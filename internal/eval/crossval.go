package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
)

// Folds holds the instance indices of each cross-validation fold.
type Folds [][]int

// StratifiedKFold partitions the instances of ds into k folds that
// preserve the class distribution, shuffled with the given seed. The
// paper uses k=3 ("two folds for training and the third for testing").
func StratifiedKFold(ds *ml.Dataset, k int, seed int64) Folds {
	if k < 2 {
		panic("eval: k must be >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, y := range ds.Y {
		if y == ml.Legitimate {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	folds := make(Folds, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// TrainTest returns the training indices (all folds but f) and the test
// indices (fold f).
func (fs Folds) TrainTest(f int) (train, test []int) {
	for i, fold := range fs {
		if i == f {
			test = append(test, fold...)
		} else {
			train = append(train, fold...)
		}
	}
	return train, test
}

// FoldResult is the outcome of evaluating one CV fold.
type FoldResult struct {
	Confusion Confusion
	AUC       float64
	// Scores/Labels are the per-instance legitimate-class scores and
	// true labels on the test fold, retained for ranking analyses.
	Scores []float64
	Labels []int
	// TestIndex maps positions in Scores back to dataset indices.
	TestIndex []int
}

// CVResult aggregates fold results.
type CVResult struct {
	Folds []FoldResult
}

// Metric extracts one number from a fold (for mean/CI aggregation).
type Metric func(FoldResult) float64

// Standard metrics over folds.
var (
	MetricAccuracy             Metric = func(f FoldResult) float64 { return f.Confusion.Accuracy() }
	MetricAUC                  Metric = func(f FoldResult) float64 { return f.AUC }
	MetricLegitPrecision       Metric = func(f FoldResult) float64 { return f.Confusion.PrecisionLegitimate() }
	MetricLegitRecall          Metric = func(f FoldResult) float64 { return f.Confusion.RecallLegitimate() }
	MetricIllegitPrecision     Metric = func(f FoldResult) float64 { return f.Confusion.PrecisionIllegitimate() }
	MetricIllegitRecall        Metric = func(f FoldResult) float64 { return f.Confusion.RecallIllegitimate() }
	MetricF1Legit              Metric = func(f FoldResult) float64 { return f.Confusion.F1Legitimate() }
	MetricFalsePositiveRate    Metric = func(f FoldResult) float64 { return f.Confusion.FalsePositiveRate() }
	MetricPairwiseOrderedness  Metric = func(f FoldResult) float64 { return PairwiseOrderedness(f.Scores, f.Labels) }
	MetricLegitClassifiedCount Metric = func(f FoldResult) float64 { return float64(f.Confusion.TP + f.Confusion.FP) }
)

// Mean returns the across-fold mean of a metric.
func (r CVResult) Mean(m Metric) float64 {
	vals := r.values(m)
	mean, _ := MeanStd(vals)
	return mean
}

// CI95 returns the across-fold 95% confidence half-width of a metric.
func (r CVResult) CI95(m Metric) float64 {
	return ConfidenceInterval95(r.values(m))
}

// Pooled returns the confusion matrix summed over all folds.
func (r CVResult) Pooled() Confusion {
	var c Confusion
	for _, f := range r.Folds {
		c.TP += f.Confusion.TP
		c.FN += f.Confusion.FN
		c.FP += f.Confusion.FP
		c.TN += f.Confusion.TN
	}
	return c
}

// PooledAUC computes AUC over the union of all fold scores.
func (r CVResult) PooledAUC() float64 {
	var scores []float64
	var labels []int
	for _, f := range r.Folds {
		scores = append(scores, f.Scores...)
		labels = append(labels, f.Labels...)
	}
	return AUC(scores, labels)
}

func (r CVResult) values(m Metric) []float64 {
	vals := make([]float64, len(r.Folds))
	for i, f := range r.Folds {
		vals[i] = m(f)
	}
	return vals
}

// Trainer produces a fresh classifier for each fold; Sampler optionally
// rebalances the training split (nil means the natural distribution).
type Trainer func() ml.Classifier

// Sampler rebalances a training set (undersampling, SMOTE, ...).
type Sampler func(*ml.Dataset, *rand.Rand) *ml.Dataset

// CVOptions tunes the execution of cross-validation without changing
// its results.
type CVOptions struct {
	// Workers bounds fold-level concurrency: folds train and score on
	// up to Workers goroutines. 0 uses the process default
	// (parallel.Workers); 1 forces a sequential run. Results are
	// bit-identical at every worker count.
	Workers int
	// Checkpoint, when non-nil, journals every completed fold under
	// CheckpointKey, and a later run with the same inputs and key skips
	// straight to the stored FoldResult. Checkpointed and recomputed
	// folds are interchangeable (the fold computation is deterministic
	// given ds, seed and trainer), so a resumed CV is bit-identical to
	// an uninterrupted one.
	Checkpoint *checkpoint.Store
	// CheckpointKey namespaces this CV run in the store. It must encode
	// everything the fold results depend on (dataset identity,
	// classifier, sampling, k, seed); reusing a key across different
	// configurations replays the wrong folds. Empty disables
	// checkpointing even when Checkpoint is set.
	CheckpointKey string
	// Prepared, when non-nil, supplies the materialized fold inputs and
	// skips the pre-draw phase entirely. It must come from
	// PrepareFoldsCtx with the same (ds, k, seed, sampler) — the caller
	// vouches for that, typically by caching the prepared folds under a
	// key that encodes all four. The inputs are read shared and
	// read-only, so one prepared set can back many concurrent CV runs
	// (e.g. every classifier evaluated on the same training plane).
	Prepared []FoldInput
}

// FoldInput is one fold's materialized training input: the (possibly
// resampled) training set and the held-out test indices. Instances of
// this type are shared read-only between CV runs; do not mutate the
// training set.
type FoldInput struct {
	TrainSet *ml.Dataset
	TestIdx  []int
}

// PrepareFoldsCtx materializes every fold's training input for a CV
// run, sequentially in fold order — including each sampler draw from
// the master seed's RNG stream, exactly as the sequential protocol
// demands. The result is the shareable fold plane of a (dataset, k,
// seed, sampler) configuration: CrossValidateCtx with
// CVOptions.Prepared set consumes it without re-drawing, and several
// classifiers evaluated over the same configuration can reuse one
// prepared set with bit-identical results.
func PrepareFoldsCtx(ctx context.Context, ds *ml.Dataset, k int, seed int64, sample Sampler) (Folds, []FoldInput, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	folds := StratifiedKFold(ds, k, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	inputs := make([]FoldInput, len(folds))
	for f := range folds {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		trainIdx, testIdx := folds.TrainTest(f)
		trainSet := ds.Subset(trainIdx)
		if sample != nil {
			trainSet = sample(trainSet, rng)
		}
		inputs[f] = FoldInput{TrainSet: trainSet, TestIdx: testIdx}
	}
	return folds, inputs, nil
}

// foldCheckpointKind is the checkpoint namespace for CV fold results.
const foldCheckpointKind = "fold"

// CrossValidate runs stratified k-fold cross-validation of the trainer
// on ds. The sampler (if non-nil) is applied to each training split
// only; the test split always keeps the natural distribution, matching
// the paper's protocol. Folds are evaluated concurrently with the
// default worker count; see CrossValidateOpts for the determinism
// contract.
func CrossValidate(ds *ml.Dataset, k int, seed int64, train Trainer, sample Sampler) (CVResult, error) {
	return CrossValidateOpts(ds, k, seed, train, sample, CVOptions{})
}

// CrossValidateOpts is CrossValidate with explicit execution options.
//
// Determinism contract: the per-fold training sets — including every
// sampler draw from the master seed's RNG stream — are materialized
// sequentially in fold order *before* folds are dispatched to the
// worker pool. Training and scoring, the expensive phase, then run
// concurrently on self-contained inputs (the trainer must return a
// fresh classifier per call and classifiers must not mutate their
// training set, which all repository learners honor). Parallel results
// are therefore bit-identical to a sequential run of the historical
// single-threaded loop.
func CrossValidateOpts(ds *ml.Dataset, k int, seed int64, train Trainer, sample Sampler, opt CVOptions) (CVResult, error) {
	return CrossValidateCtx(context.Background(), ds, k, seed, train, sample, opt)
}

// CrossValidateCtx is CrossValidateOpts with cooperative cancellation
// and optional per-fold checkpointing. On cancellation it stops
// dispatching folds, drains the in-flight ones (journaling them when a
// checkpoint store is configured) and returns ctx's error; a subsequent
// run with the same inputs and CVOptions.CheckpointKey resumes from the
// completed folds.
func CrossValidateCtx(ctx context.Context, ds *ml.Dataset, k int, seed int64, train Trainer, sample Sampler, opt CVOptions) (CVResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Pre-draw phase (sequential, fold order): consume the shared
	// sampler stream exactly as the sequential loop did. This phase must
	// run in full even for a checkpoint-resumed CV — skipping a fold's
	// draws would shift the stream of every later fold. A caller that
	// already holds the prepared fold plane passes it in and skips the
	// draws wholesale (they happened once, when the plane was built).
	inputs := opt.Prepared
	if inputs == nil {
		var err error
		_, inputs, err = PrepareFoldsCtx(ctx, ds, k, seed, sample)
		if err != nil {
			return CVResult{}, err
		}
	} else if len(inputs) != k {
		return CVResult{}, fmt.Errorf("eval: %d prepared folds for k=%d", len(inputs), k)
	}
	folds := inputs

	ckpt := opt.Checkpoint
	if opt.CheckpointKey == "" {
		ckpt = nil
	}

	// Fan-out phase: train and score folds concurrently.
	frs, err := parallel.MapErrCtx(ctx, len(folds), opt.Workers, func(f int) (FoldResult, error) {
		key := fmt.Sprintf("%s/%d-of-%d", opt.CheckpointKey, f, len(folds))
		if ckpt != nil {
			var fr FoldResult
			if ok, err := ckpt.GetJSON(foldCheckpointKind, key, &fr); err == nil && ok {
				return fr, nil
			}
		}
		clf := train()
		if err := clf.Fit(inputs[f].TrainSet); err != nil {
			return FoldResult{}, err
		}
		fr := FoldResult{TestIndex: inputs[f].TestIdx}
		for _, i := range inputs[f].TestIdx {
			p := clf.Prob(ds.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, ds.Y[i])
			fr.Confusion.Observe(ds.Y[i], ml.PredictFromProb(p))
		}
		fr.AUC = AUC(fr.Scores, fr.Labels)
		if ckpt != nil {
			if err := ckpt.PutJSON(foldCheckpointKind, key, fr); err != nil {
				return FoldResult{}, err
			}
		}
		return fr, nil
	})
	if err != nil {
		return CVResult{}, err
	}
	return CVResult{Folds: frs}, nil
}

// PairwiseOrderedness implements the paper's pairord measure: the
// fraction of (p,q) pairs with different labels that are ranked without
// violation, where a violation is an illegitimate pharmacy receiving a
// score greater than or equal to a legitimate pharmacy's score.
//
// The paper's indicator I(p,q) is 1 iff rank(p) >= rank(q) while
// O(p) < O(q) (or symmetrically), i.e. ties count as violations.
func PairwiseOrderedness(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("eval: scores and labels length mismatch")
	}
	// Count, over all legit/illegit pairs, how many have
	// score(illegit) >= score(legit). Sorting gives O(n log n).
	type sl struct {
		s float64
		y int
	}
	pts := make([]sl, len(scores))
	var pos, neg int
	for i := range scores {
		pts[i] = sl{scores[i], labels[i]}
		if labels[i] == ml.Legitimate {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 1
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].s < pts[b].s })

	var violations float64
	// Sweep in increasing score order. For each legitimate instance,
	// every illegitimate instance with score >= its score violates.
	// Handle ties in blocks.
	i := 0
	negSeen := 0 // illegitimate with strictly smaller score
	for i < len(pts) {
		j := i
		posBlock, negBlock := 0, 0
		for j < len(pts) && pts[j].s == pts[i].s {
			if pts[j].y == ml.Legitimate {
				posBlock++
			} else {
				negBlock++
			}
			j++
		}
		negAtOrAbove := neg - negSeen // includes ties in this block
		violations += float64(posBlock) * float64(negAtOrAbove)
		negSeen += negBlock
		i = j
	}
	total := float64(pos) * float64(neg)
	return (total - violations) / total
}
