package svm

import (
	"encoding/json"
	"testing"
)

func TestLinearSerializeRoundTrip(t *testing.T) {
	ds := linearlySeparable(150, 60, 1)
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(clf)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewLinear()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if clf.Decision(x) != restored.Decision(x) {
			t.Fatal("decision values changed after round trip")
		}
		if clf.Prob(x) != restored.Prob(x) {
			t.Fatal("calibrated probabilities changed after round trip")
		}
	}
}

func TestLinearMarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewLinear()); err == nil {
		t.Error("unfitted marshal must fail")
	}
}

func TestLinearUnmarshalBadShape(t *testing.T) {
	bad := `{"c":1,"dim":3,"w":[1,2]}`
	if err := json.Unmarshal([]byte(bad), NewLinear()); err == nil {
		t.Error("weight/dim mismatch must fail")
	}
}
