package crawler

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pharmaverify/internal/webgen"
)

// mapFetcher serves pages from a map keyed by domain|path.
type mapFetcher map[string]string

func (m mapFetcher) Fetch(domain, path string) (string, error) {
	if html, ok := m[domain+"|"+path]; ok {
		return html, nil
	}
	return "", errors.New("404")
}

func TestCrawlFollowsInternalLinks(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="/a">a</a><a href="/b">b</a><p>root</p>`,
		"x.com|/a": `<a href="/c">c</a><p>page a</p>`,
		"x.com|/b": `<p>page b</p>`,
		"x.com|/c": `<p>page c</p><a href="http://other.com/x">ext</a>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(r.Pages))
	}
	if r.Pages[0].Path != "/" { // sorted: "/", "/a", "/b", "/c"
		t.Errorf("pages not sorted: %v", r.Pages[0].Path)
	}
	if !reflect.DeepEqual(r.External, []string{"http://other.com/x"}) {
		t.Errorf("External = %v", r.External)
	}
	if r.Fetched != 4 || r.Failed != 0 {
		t.Errorf("counters: %d fetched, %d failed", r.Fetched, r.Failed)
	}
}

func TestCrawlMaxPages(t *testing.T) {
	// A chain of 50 pages with a cap of 10: the crawler must stop at 10
	// pages AND must not waste fetches (or politeness delay) on pages
	// it would discard afterwards.
	f := mapFetcher{}
	for i := 0; i < 50; i++ {
		f[fmt.Sprintf("x.com|/p%d", i)] = fmt.Sprintf(`<a href="/p%d">next</a><p>n</p>`, i+1)
	}
	f["x.com|/"] = `<a href="/p0">start</a>`
	pageFetches := int32(0)
	counting := FetcherFunc(func(domain, path string) (string, error) {
		if path != "/robots.txt" {
			atomic.AddInt32(&pageFetches, 1)
		}
		return f.Fetch(domain, path)
	})
	r := Crawl(counting, "x.com", Config{MaxPages: 10, Workers: 4})
	if len(r.Pages) != 10 {
		t.Errorf("crawled %d pages, cap 10", len(r.Pages))
	}
	if n := atomic.LoadInt32(&pageFetches); n != 10 {
		t.Errorf("issued %d page fetches for a cap of 10 (over-fetch)", n)
	}
	if r.Fetched != 10 {
		t.Errorf("Fetched = %d, want 10 fetch attempts", r.Fetched)
	}
}

func TestCrawlWorkersExceedFrontierNoDeadlock(t *testing.T) {
	// A one-page site crawled with far more workers than frontier
	// entries: every idle worker must wake up and exit.
	f := mapFetcher{"x.com|/": `<p>only page</p>`}
	done := make(chan Result, 1)
	go func() { done <- Crawl(f, "x.com", Config{Workers: 32}) }()
	select {
	case r := <-done:
		if len(r.Pages) != 1 {
			t.Errorf("pages = %d, want 1", len(r.Pages))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Crawl deadlocked with Workers > frontier")
	}
}

func TestCrawlRetriesTransientErrors(t *testing.T) {
	// "/a" fails twice transiently before succeeding; with a retry
	// budget of 3 the page must be recovered and the counters must
	// record the retries.
	var aCalls int32
	f := FetcherFunc(func(domain, path string) (string, error) {
		switch path {
		case "/robots.txt":
			return "", Permanent(errors.New("404"))
		case "/":
			return `<a href="/a">a</a><p>root</p>`, nil
		case "/a":
			if atomic.AddInt32(&aCalls, 1) <= 2 {
				return "", errors.New("connection reset")
			}
			return `<p>recovered</p>`, nil
		}
		return "", Permanent(errors.New("404"))
	})
	r := Crawl(f, "x.com", Config{Retry: RetryConfig{MaxAttempts: 3}})
	if len(r.Pages) != 2 {
		t.Fatalf("pages = %d, want 2 (transient failure must be retried)", len(r.Pages))
	}
	if r.Stats.Retries != 2 || r.Stats.Failures != 2 {
		t.Errorf("retries=%d failures=%d, want 2/2", r.Stats.Retries, r.Stats.Failures)
	}
	if r.Stats.Attempts != r.Stats.Successes+r.Stats.Failures {
		t.Errorf("stats do not reconcile: %+v", r.Stats)
	}
}

func TestCrawlDoesNotRetryPermanentErrors(t *testing.T) {
	var missingCalls int32
	f := FetcherFunc(func(domain, path string) (string, error) {
		switch path {
		case "/robots.txt":
			return "", Permanent(errors.New("404"))
		case "/":
			return `<a href="/missing">gone</a><p>root</p>`, nil
		}
		atomic.AddInt32(&missingCalls, 1)
		return "", Permanent(errors.New("404"))
	})
	r := Crawl(f, "x.com", Config{Retry: RetryConfig{MaxAttempts: 5}})
	if n := atomic.LoadInt32(&missingCalls); n != 1 {
		t.Errorf("permanent 404 fetched %d times, want 1", n)
	}
	if r.Stats.PagesFailed != 1 {
		t.Errorf("PagesFailed = %d, want 1", r.Stats.PagesFailed)
	}
}

func TestCrawlCircuitBreaker(t *testing.T) {
	// The front page lists many children, all of which hard-fail. With
	// FailureBudget 3 the crawl must stop after 3 consecutive lost
	// pages and keep what it has instead of hammering the domain.
	var links strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&links, `<a href="/dead%d">x</a>`, i)
	}
	var childFetches int32
	f := FetcherFunc(func(domain, path string) (string, error) {
		switch path {
		case "/robots.txt":
			return "", Permanent(errors.New("404"))
		case "/":
			return links.String() + "<p>root</p>", nil
		}
		atomic.AddInt32(&childFetches, 1)
		return "", Permanent(errors.New("503 forever"))
	})
	r := Crawl(f, "x.com", Config{Workers: 1, FailureBudget: 3})
	if r.Stats.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", r.Stats.BreakerTrips)
	}
	if n := atomic.LoadInt32(&childFetches); n != 3 {
		t.Errorf("fetched %d dead children before tripping, want 3", n)
	}
	if len(r.Pages) != 1 {
		t.Errorf("pages = %d, want the 1 page collected before the trip", len(r.Pages))
	}
}

func TestCrawlFetchTimeout(t *testing.T) {
	slow := make(chan struct{})
	f := FetcherFunc(func(domain, path string) (string, error) {
		if path == "/robots.txt" {
			return "", Permanent(errors.New("404"))
		}
		if path == "/hang" {
			<-slow
			return "", errors.New("never reached in time")
		}
		return `<a href="/hang">h</a><p>root</p>`, nil
	})
	r := Crawl(f, "x.com", Config{FetchTimeout: 50 * time.Millisecond})
	close(slow)
	if r.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", r.Stats.Timeouts)
	}
	if len(r.Pages) != 1 {
		t.Errorf("pages = %d, want 1", len(r.Pages))
	}
}

func TestCrawlRobotsRetriedWithDelay(t *testing.T) {
	// robots.txt fails transiently once; with retries enabled the
	// second attempt must land and its Disallow rules must be honored —
	// a flaky robots fetch must not silently allow everything.
	var robotsCalls int32
	f := FetcherFunc(func(domain, path string) (string, error) {
		switch path {
		case "/robots.txt":
			if atomic.AddInt32(&robotsCalls, 1) == 1 {
				return "", errors.New("i/o timeout")
			}
			return "User-agent: *\nDisallow: /private", nil
		case "/":
			return `<a href="/private/x">p</a><a href="/ok">ok</a><p>root</p>`, nil
		case "/ok":
			return `<p>ok</p>`, nil
		}
		return "", Permanent(errors.New("404"))
	})
	r := Crawl(f, "x.com", Config{Retry: RetryConfig{MaxAttempts: 3}})
	if got := atomic.LoadInt32(&robotsCalls); got != 2 {
		t.Errorf("robots.txt fetched %d times, want 2 (one retry)", got)
	}
	if r.Stats.RobotsUnreachable {
		t.Error("RobotsUnreachable set although the retry succeeded")
	}
	for _, p := range r.Pages {
		if strings.HasPrefix(p.Path, "/private") {
			t.Errorf("crawled disallowed path %s", p.Path)
		}
	}
	if len(r.Pages) != 2 {
		t.Errorf("pages = %d, want 2", len(r.Pages))
	}
}

func TestCrawlRobotsUnreachableRecorded(t *testing.T) {
	f := FetcherFunc(func(domain, path string) (string, error) {
		if path == "/robots.txt" {
			return "", errors.New("i/o timeout") // transient, forever
		}
		if path == "/" {
			return `<p>root</p>`, nil
		}
		return "", Permanent(errors.New("404"))
	})
	r := Crawl(f, "x.com", Config{Retry: RetryConfig{MaxAttempts: 2}})
	if !r.Stats.RobotsUnreachable {
		t.Error("RobotsUnreachable not recorded for a robots.txt that kept timing out")
	}
	if r.Stats.RobotsAttempts != 2 || r.Stats.RobotsFailures != 2 {
		t.Errorf("robots attempts/failures = %d/%d, want 2/2",
			r.Stats.RobotsAttempts, r.Stats.RobotsFailures)
	}
	if len(r.Pages) != 1 {
		t.Errorf("pages = %d, want 1 (crawl degrades to allow-all)", len(r.Pages))
	}
}

func TestCrawlHandlesFetchErrors(t *testing.T) {
	f := mapFetcher{
		"x.com|/": `<a href="/missing">gone</a><p>root</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	// Fetched counts fetch attempts: "/" (success) and "/missing"
	// (failure).
	if r.Fetched != 2 || r.Failed != 1 {
		t.Errorf("fetched=%d failed=%d, want 2/1", r.Fetched, r.Failed)
	}
	if r.Stats.Attempts != r.Stats.Successes+r.Stats.Failures {
		t.Errorf("stats do not reconcile: %+v", r.Stats)
	}
	if r.Stats.PagesFailed != 1 {
		t.Errorf("PagesFailed = %d, want 1", r.Stats.PagesFailed)
	}
}

func TestCrawlDeduplicatesPaths(t *testing.T) {
	calls := int32(0)
	f := FetcherFunc(func(domain, path string) (string, error) {
		if path == "/robots.txt" {
			return "", errors.New("404")
		}
		atomic.AddInt32(&calls, 1)
		return `<a href="/">home</a><a href="/">again</a><p>x</p>`, nil
	})
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 1 {
		t.Errorf("pages = %d", len(r.Pages))
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("fetch called %d times for one unique path", calls)
	}
}

func TestCrawlAbsoluteInternalAndWWW(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="http://x.com/a">a</a><a href="http://www.x.com/b">b</a><p>.</p>`,
		"x.com|/a": `<p>a</p>`,
		"x.com|/b": `<p>b</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 3 {
		t.Errorf("pages = %d, want 3 (absolute internal links followed)", len(r.Pages))
	}
	if len(r.External) != 0 {
		t.Errorf("own-domain absolute links recorded as external: %v", r.External)
	}
}

func TestCrawlFragmentsAndSchemesIgnored(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="#top">top</a><a href="mailto:[email protected]">m</a><a href="/a#frag">a</a><p>.</p>`,
		"x.com|/a": `<p>a</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 2 {
		t.Errorf("pages = %d, want 2", len(r.Pages))
	}
}

func TestInternalPath(t *testing.T) {
	cases := []struct {
		link, base, domain, want string
		ok                       bool
	}{
		{"/about", "/", "x.com", "/about", true},
		{"about", "/", "x.com", "/about", true},
		{"http://x.com/a", "/", "x.com", "/a", true},
		{"http://www.x.com/a", "/", "x.com", "/a", true},
		{"http://x.com", "/", "x.com", "/", true},
		{"http://x.com:8080/a", "/", "x.com", "/a", true},
		{"http://other.com/a", "/", "x.com", "", false},
		{"//x.com/a", "/", "x.com", "/a", true},
		{"#frag", "/", "x.com", "", false},
		{"", "/", "x.com", "", false},
		// Page-relative references resolve against the referring page's
		// directory, not the site root.
		{"page2", "/docs/a", "x.com", "/docs/page2", true},
		{"page2", "/docs/", "x.com", "/docs/page2", true},
		{"sub/page", "/docs/a", "x.com", "/docs/sub/page", true},
		{"../up", "/docs/sub/a", "x.com", "/docs/up", true},
		{"./here", "/docs/a", "x.com", "/docs/here", true},
		{"../../past-root", "/a", "x.com", "/past-root", true},
		{"page2#frag", "/docs/a", "x.com", "/docs/page2", true},
	}
	for _, c := range cases {
		got, ok := internalPath(c.link, c.base, c.domain)
		if got != c.want || ok != c.ok {
			t.Errorf("internalPath(%q,%q,%q) = %q,%v want %q,%v", c.link, c.base, c.domain, got, ok, c.want, c.ok)
		}
	}
}

func TestCrawlResolvesRelativeLinks(t *testing.T) {
	f := mapFetcher{
		"x.com|/":            `<a href="/docs/a">docs</a><p>root</p>`,
		"x.com|/docs/a":      `<a href="b">sibling</a><a href="sub/c">deeper</a><p>a</p>`,
		"x.com|/docs/b":      `<p>b</p>`,
		"x.com|/docs/sub/c":  `<a href="../b">up</a><p>c</p>`,
		"x.com|/b":           `<p>WRONG: root-resolved sibling</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	var paths []string
	for _, p := range r.Pages {
		paths = append(paths, p.Path)
	}
	want := []string{"/", "/docs/a", "/docs/b", "/docs/sub/c"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("crawled paths = %v, want %v", paths, want)
	}
}

func TestCrawlSyntheticWorld(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 1, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	d := w.Domains()[0]
	r := Crawl(w, d, Config{})
	if len(r.Pages) != len(w.Site(d).Paths) {
		t.Errorf("crawled %d pages, site has %d", len(r.Pages), len(w.Site(d).Paths))
	}
	if len(r.External) == 0 {
		t.Error("no external links found on synthetic site")
	}
	for _, p := range r.Pages {
		if p.Text == "" {
			t.Errorf("page %s has no text", p.Path)
		}
	}
}

func TestCrawlAll(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 2, NumLegit: 4, NumIllegit: 8, NetworkSize: 4})
	domains := w.Domains()
	results := CrawlAll(w, domains, Config{}, 4)
	if len(results) != len(domains) {
		t.Fatalf("results = %d, want %d", len(results), len(domains))
	}
	for _, d := range domains {
		if results[d].Fetched == 0 {
			t.Errorf("domain %s: nothing fetched", d)
		}
	}
}

func TestCrawlDeterministicAcrossWorkerCounts(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 3, NumLegit: 2, NumIllegit: 4, NetworkSize: 2})
	d := w.Domains()[0]
	a := Crawl(w, d, Config{Workers: 1})
	b := Crawl(w, d, Config{Workers: 8})
	if !reflect.DeepEqual(a.Pages, b.Pages) || !reflect.DeepEqual(a.External, b.External) {
		t.Error("crawl output depends on worker count")
	}
}

func TestHTTPFetcher(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `<title>srv</title><a href="/a">a</a>`)
		case "/a":
			fmt.Fprint(w, `<p>page a</p>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	domain := strings.TrimPrefix(srv.URL, "http://")

	h := &HTTPFetcher{}
	html, err := h.Fetch(domain, "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "srv") {
		t.Errorf("body = %q", html)
	}
	if _, err := h.Fetch(domain, "/missing"); err == nil {
		t.Error("404 must be an error")
	}

	r := Crawl(h, domain, Config{MaxPages: 5})
	if len(r.Pages) != 2 {
		t.Errorf("HTTP crawl pages = %d, want 2", len(r.Pages))
	}
}

func BenchmarkCrawlSite(b *testing.B) {
	w := webgen.Generate(webgen.Config{Seed: 42, NumLegit: 1, NumIllegit: 1, NetworkSize: 1, MinPages: 18, MaxPages: 18})
	d := w.Domains()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(w, d, Config{})
	}
}
