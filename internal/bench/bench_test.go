package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func smallEnv(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvCached(t *testing.T) {
	a := smallEnv(t)
	b := smallEnv(t)
	if a != b {
		t.Error("NewEnv must cache by scale")
	}
}

func TestTable1Shape(t *testing.T) {
	e := smallEnv(t)
	tab, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[1][1], strconv.Itoa(SmallScale.Legit1)) {
		t.Errorf("legit count missing: %v", tab.Rows[1])
	}
	if !strings.Contains(tab.Notes[0], "intersection between datasets: 0") {
		t.Errorf("disjointness violated: %v", tab.Notes)
	}
}

func TestEveryRunnerProducesATable(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner sweep is slow")
	}
	e := smallEnv(t)
	for _, r := range Runners {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(e)
			if err != nil {
				t.Fatalf("runner %s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("runner %s produced no rows", r.ID)
			}
			var buf bytes.Buffer
			if _, err := tab.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), tab.ID) {
				t.Error("rendered table missing its ID")
			}
		})
	}
}

func TestFindRunner(t *testing.T) {
	if FindRunner("11") == nil || FindRunner("F2") == nil || FindRunner("A1") == nil {
		t.Error("known runner not found")
	}
	if FindRunner("nope") != nil {
		t.Error("unknown runner found")
	}
}

func TestTable11ContainsSignatureEndpoints(t *testing.T) {
	e := smallEnv(t)
	tab, err := Table11(e)
	if err != nil {
		t.Fatal(err)
	}
	var legitCol, illegitCol []string
	for _, row := range tab.Rows {
		legitCol = append(legitCol, row[1])
		illegitCol = append(illegitCol, row[2])
	}
	joinL := strings.Join(legitCol, " ")
	joinI := strings.Join(illegitCol, " ")
	for _, ep := range []string{"facebook.com", "twitter.com", "fda.gov"} {
		if !strings.Contains(joinL, ep) {
			t.Errorf("legit top-10 missing %s: %v", ep, legitCol)
		}
	}
	for _, ep := range []string{"wikipedia.org", "wordpress.org"} {
		if !strings.Contains(joinI, ep) {
			t.Errorf("illegit top-10 missing %s: %v", ep, illegitCol)
		}
	}
}

func TestFigure3Standalone(t *testing.T) {
	tab, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Good nodes must end with more trust than bad ones.
	score := map[string]float64{}
	for _, r := range tab.Rows {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("unparsable score %q", r[3])
		}
		score[r[0]] = v
	}
	if score["g3"] <= score["b2"] {
		t.Errorf("g3=%v should exceed b2=%v", score["g3"], score["b2"])
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{
		ID:     "Table Y",
		Title:  "md demo",
		Header: []string{"col", "val|ue"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", "1")
	tab.AddRow("y") // short row padded
	var buf bytes.Buffer
	if _, err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"### Table Y — md demo",
		"| col | val\\|ue |",
		"|---|---|",
		"| x | 1 |",
		"| y |   |",
		"*a note*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "Table X",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Notes:  []string{"hello"},
	}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table X — demo", "a  bbbb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
