package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"pharmaverify/internal/ml"
	"pharmaverify/internal/ngram"
	"pharmaverify/internal/vectorize"
)

// KernelEntry records the micro-benchmark of one optimized feature
// kernel against its naive reference implementation: nanoseconds and
// heap allocations per operation for both paths, the resulting ratios,
// and whether the two paths still produce bit-identical output on the
// benchmark workload.
type KernelEntry struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
	// NaiveNSOp / KernelNSOp are nanoseconds per operation.
	NaiveNSOp  float64 `json:"naive_ns_op"`
	KernelNSOp float64 `json:"kernel_ns_op"`
	// NaiveAllocsOp / KernelAllocsOp are heap allocations per operation
	// (runtime.MemStats.Mallocs deltas over the timed loop).
	NaiveAllocsOp  float64 `json:"naive_allocs_op"`
	KernelAllocsOp float64 `json:"kernel_allocs_op"`
	// Speedup is NaiveNSOp / KernelNSOp.
	Speedup float64 `json:"speedup"`
	// AllocRatio is NaiveAllocsOp divided by KernelAllocsOp, with the
	// kernel count clamped to at least 1 so a zero-allocation kernel
	// yields a finite ratio.
	AllocRatio float64 `json:"alloc_ratio"`
	// Identical is true when the kernel path reproduced the naive path's
	// output bit for bit on every workload input.
	Identical bool `json:"identical"`
}

// DefaultKernelBenchtime is the per-measurement target used when
// RunKernelBenchmarks is called with a non-positive benchtime. Kernel
// regressions are judged by within-process ratios (Speedup,
// AllocRatio), so a short window is enough.
const DefaultKernelBenchtime = 100 * time.Millisecond

// kernelSink defeats dead-code elimination of the benchmark bodies.
var kernelSink float64

// measureOp times f in growing batches until the batch wall time
// reaches benchtime, returning nanoseconds and heap allocations per
// call. Allocations are process-wide Mallocs deltas; the caller runs
// single-goroutine so the numbers are attributable to f.
func measureOp(benchtime time.Duration, f func()) (nsOp, allocsOp float64) {
	f() // warmup: pools filled, caches primed, code paths jitted into icache
	target := int64(benchtime)
	iters := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := nowNS()
		for i := 0; i < iters; i++ {
			f()
		}
		ns := nowNS() - start
		runtime.ReadMemStats(&after)
		if ns >= target || iters >= 1<<24 {
			return float64(ns) / float64(iters), float64(after.Mallocs-before.Mallocs) / float64(iters)
		}
		next := iters * 4
		if ns > 0 {
			next = int(float64(iters)*float64(target)/float64(ns)*1.2) + 1
		}
		if next <= iters {
			next = iters * 2
		}
		iters = next
	}
}

func finishKernelEntry(e *KernelEntry) {
	if e.KernelNSOp > 0 {
		e.Speedup = e.NaiveNSOp / e.KernelNSOp
	}
	ka := e.KernelAllocsOp
	if ka < 1 {
		ka = 1
	}
	e.AllocRatio = e.NaiveAllocsOp / ka
}

// kernelSeed fixes the synthetic workload; the micro-benchmarks need no
// dataset Env, so `experiments -bench-kernel-check` runs in well under a
// second.
const kernelSeed = 424242

// kernelWorkload is the shared synthetic corpus: a lexicon of random
// words, document texts drawn from it, their prebuilt graphs, and the
// two class graphs the serving path compares against.
type kernelWorkload struct {
	texts     []string
	docGraphs []*ngram.Graph
	legit     *ngram.Graph
	illegit   *ngram.Graph

	termDocs [][]string
	vocab    *vectorize.Vocabulary
}

func newKernelWorkload() *kernelWorkload {
	rng := rand.New(rand.NewSource(kernelSeed))
	lexicon := make([]string, 400)
	for i := range lexicon {
		b := make([]byte, 3+rng.Intn(6))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		lexicon[i] = string(b)
	}
	text := func(words int) string {
		var sb strings.Builder
		for i := 0; i < words; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(lexicon[rng.Intn(len(lexicon))])
		}
		return sb.String()
	}

	w := &kernelWorkload{}
	classDocs := func(n int) []*ngram.Graph {
		gs := make([]*ngram.Graph, n)
		for i := range gs {
			gs[i] = ngram.FromDocument(text(150))
		}
		return gs
	}
	w.legit = ngram.MergeAll(classDocs(24))
	w.illegit = ngram.MergeAll(classDocs(24))

	w.texts = make([]string, 32)
	w.docGraphs = make([]*ngram.Graph, len(w.texts))
	for i := range w.texts {
		w.texts[i] = text(150)
		w.docGraphs[i] = ngram.FromDocument(w.texts[i])
	}

	train := make([][]string, 300)
	for i := range train {
		train[i] = strings.Fields(text(120))
	}
	w.vocab = vectorize.BuildVocabulary(train)
	w.termDocs = make([][]string, 64)
	for i := range w.termDocs {
		w.termDocs[i] = strings.Fields(text(120))
	}
	return w
}

// naiveEight is the pre-kernel Compare path: the four standalone
// similarity functions against each class, with NormalizedValue
// recomputing Size and Value internally.
func naiveEight(g, legit, illegit *ngram.Graph) [8]float64 {
	return [8]float64{
		ngram.ContainmentSimilarity(g, legit),
		ngram.SizeSimilarity(g, legit),
		ngram.ValueSimilarity(g, legit),
		ngram.NormalizedValueSimilarity(g, legit),
		ngram.ContainmentSimilarity(g, illegit),
		ngram.SizeSimilarity(g, illegit),
		ngram.ValueSimilarity(g, illegit),
		ngram.NormalizedValueSimilarity(g, illegit),
	}
}

func vectorsEqual(a, b ml.Vector) bool {
	if len(a.Ind) != len(b.Ind) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// RunKernelBenchmarks measures the single-pass feature kernels against
// their naive reference implementations on a fixed synthetic workload
// and reports per-op time, allocations and byte-identity. benchtime <= 0
// uses DefaultKernelBenchtime per measurement.
func RunKernelBenchmarks(benchtime time.Duration) []KernelEntry {
	if benchtime <= 0 {
		benchtime = DefaultKernelBenchtime
	}
	w := newKernelWorkload()
	var entries []KernelEntry

	// Text to 8-feature vector against both classes: the path
	// NGGFeatureDataset and the daemon's featurize stage take per
	// document. Naive = FromDocument + the four standalone functions per
	// class; kernel = pooled builder + single-pass CompareBoth.
	{
		e := KernelEntry{
			ID:        "ngg-compare-both",
			Desc:      "text -> 8 NGG features vs both class graphs (pooled builder + single pass vs FromDocument + 4 standalone functions x2)",
			Identical: true,
		}
		for i, text := range w.texts {
			want := naiveEight(w.docGraphs[i], w.legit, w.illegit)
			got := ngram.DocFeatures(nil, text, w.legit, w.illegit)
			for k := range want {
				if got[k] != want[k] {
					e.Identical = false
				}
			}
		}
		var i int
		e.NaiveNSOp, e.NaiveAllocsOp = measureOp(benchtime, func() {
			g := ngram.FromDocument(w.texts[i%len(w.texts)])
			f := naiveEight(g, w.legit, w.illegit)
			kernelSink += f[0]
			i++
		})
		var j int
		var buf []float64
		e.KernelNSOp, e.KernelAllocsOp = measureOp(benchtime, func() {
			buf = ngram.DocFeatures(buf, w.texts[j%len(w.texts)], w.legit, w.illegit)
			kernelSink += buf[0]
			j++
		})
		finishKernelEntry(&e)
		entries = append(entries, e)
	}

	// Prebuilt graphs: isolates the single-traversal win of CompareBoth
	// over eight standalone calls (which walk the document's edges about
	// eight times between them). Neither path allocates, so only the
	// time ratio is meaningful here.
	{
		e := KernelEntry{
			ID:        "ngg-compare-graphs",
			Desc:      "prebuilt graphs -> CompareBoth vs 4 standalone similarity functions x2 classes",
			Identical: true,
		}
		for _, g := range w.docGraphs {
			want := naiveEight(g, w.legit, w.illegit)
			a, b := ngram.CompareBoth(g, w.legit, w.illegit)
			got := [8]float64{a.CS, a.SS, a.VS, a.NVS, b.CS, b.SS, b.VS, b.NVS}
			if got != want {
				e.Identical = false
			}
		}
		var i int
		e.NaiveNSOp, e.NaiveAllocsOp = measureOp(benchtime, func() {
			f := naiveEight(w.docGraphs[i%len(w.docGraphs)], w.legit, w.illegit)
			kernelSink += f[0]
			i++
		})
		var j int
		e.KernelNSOp, e.KernelAllocsOp = measureOp(benchtime, func() {
			a, b := ngram.CompareBoth(w.docGraphs[j%len(w.docGraphs)], w.legit, w.illegit)
			kernelSink += a.CS + b.CS
			j++
		})
		finishKernelEntry(&e)
		entries = append(entries, e)
	}

	// Sparse TF-IDF vectorization: the scratch-buffer Vectorizer against
	// the map-based Vocabulary.TFIDF, as on the daemon's request path.
	{
		e := KernelEntry{
			ID:        "tfidf-sparse",
			Desc:      "terms -> L2-normalized TF-IDF vector (scratch-buffer Vectorizer vs map-based Vocabulary.TFIDF)",
			Identical: true,
		}
		z := vectorize.NewVectorizer(w.vocab)
		for _, doc := range w.termDocs {
			if !vectorsEqual(z.TFIDF(doc), w.vocab.TFIDF(doc)) {
				e.Identical = false
			}
		}
		var i int
		var nv ml.Vector
		e.NaiveNSOp, e.NaiveAllocsOp = measureOp(benchtime, func() {
			nv = w.vocab.TFIDF(w.termDocs[i%len(w.termDocs)])
			i++
		})
		if len(nv.Val) > 0 {
			kernelSink += nv.Val[0]
		}
		var j int
		var kv ml.Vector
		e.KernelNSOp, e.KernelAllocsOp = measureOp(benchtime, func() {
			kv = z.TFIDF(w.termDocs[j%len(w.termDocs)])
			j++
		})
		if len(kv.Val) > 0 {
			kernelSink += kv.Val[0]
		}
		finishKernelEntry(&e)
		entries = append(entries, e)
	}

	return entries
}

// kernelFloors are the per-entry minimums enforced by
// CheckKernelRegression regardless of what the baseline file claims —
// the acceptance bars of the optimization itself. AllocRatio floors are
// only meaningful for entries whose naive path allocates.
// one map lookup per class per edge still pays the same per-lookup
// cost as the ~6 lookups it replaces, so the prebuilt-graphs entry
// lands near 2x rather than 6x; its floor is set below the measured
// value, not at the optimization's headline bar.
var kernelFloors = map[string]struct{ speedup, allocRatio float64 }{
	"ngg-compare-both":   {speedup: 2.0, allocRatio: 2.0},
	"ngg-compare-graphs": {speedup: 1.5},
	"tfidf-sparse":       {speedup: 1.0, allocRatio: 2.0},
	// Training-path kernels (training.go). Ensemble selection drops the
	// per-comparison metric calls and per-bag slices, so both ratios
	// carry the optimization's 2x acceptance bar; the webgen kernel's
	// headline win is allocations (fmt/Builder intermediates gone) with
	// a more modest single-thread time win.
	"ensemble-selection": {speedup: 2.0, allocRatio: 2.0},
	"webgen-world":       {speedup: 1.2, allocRatio: 2.0},
}

// CheckKernelRegression compares a fresh kernel run against the
// checked-in baseline. Absolute ns/op is not portable across machines,
// so the check is ratio-based: each entry must stay byte-identical,
// keep its within-process Speedup above both its hard floor and
// baseline/tol, keep AllocRatio above its floor, and not grow its
// per-op kernel allocation count beyond baseline*tol+2 (allocation
// counts, unlike times, are nearly machine-independent). tol is the
// tolerance band, e.g. 1.5; values below 1 are clamped to 1.
func CheckKernelRegression(cur, base []KernelEntry, tol float64) error {
	if tol < 1 {
		tol = 1
	}
	if len(base) == 0 {
		return errors.New("bench: baseline has no kernel entries (regenerate with `experiments -bench-json`)")
	}
	byID := make(map[string]KernelEntry, len(cur))
	for _, e := range cur {
		byID[e.ID] = e
	}
	for _, b := range base {
		c, ok := byID[b.ID]
		if !ok {
			return fmt.Errorf("bench: kernel entry %q missing from current run", b.ID)
		}
		if !c.Identical {
			return fmt.Errorf("bench: kernel %s: output no longer bit-identical to the naive reference", b.ID)
		}
		fl := kernelFloors[b.ID]
		if c.Speedup < fl.speedup {
			return fmt.Errorf("bench: kernel %s: speedup %.2fx below the %.1fx floor", b.ID, c.Speedup, fl.speedup)
		}
		if want := b.Speedup / tol; c.Speedup < want {
			return fmt.Errorf("bench: kernel %s: speedup regressed to %.2fx (baseline %.2fx, tolerance %.1f requires >= %.2fx)",
				b.ID, c.Speedup, b.Speedup, tol, want)
		}
		if fl.allocRatio > 0 && c.AllocRatio < fl.allocRatio {
			return fmt.Errorf("bench: kernel %s: alloc ratio %.2fx below the %.1fx floor", b.ID, c.AllocRatio, fl.allocRatio)
		}
		if want := b.KernelAllocsOp*tol + 2; c.KernelAllocsOp > want {
			return fmt.Errorf("bench: kernel %s: %.1f allocs/op exceeds baseline %.1f (tolerance allows <= %.1f)",
				b.ID, c.KernelAllocsOp, b.KernelAllocsOp, want)
		}
	}
	return nil
}
