package serve

import (
	"container/list"
	"sync"
	"time"
)

// verdictCache is the TTL + LRU verdict cache of the serving layer.
// Keys are "modelFingerprint|domain" (see verdictKey), so a hot model
// reload naturally invalidates every verdict of the previous model
// without a flush — old entries simply stop being addressable and age
// out of the LRU. The design mirrors internal/featcache (bounded entry
// count, front-of-list = most recently used) with per-entry expiry on
// top; singleflight lives one layer up in flightGroup, because the
// serving path must distinguish a cache hit from a deduplicated crawl.
//
// Expired entries are retained for up to maxStale beyond the TTL (and
// remain LRU-evictable) so the degradation path can serve a marked
// stale verdict when live assessment fails entirely — answering with
// yesterday's verdict beats answering with an error. getStale is that
// fallback read; get never returns an expired entry.
type verdictCache struct {
	mu       sync.Mutex
	max      int
	ttl      time.Duration
	maxStale time.Duration
	now      func() time.Time
	order    *list.List
	entries  map[string]*list.Element

	hits, misses, expiries, evictions, staleServes uint64
}

type cacheEntry struct {
	key    string
	v      DomainVerdict
	stored time.Time
}

// newVerdictCache builds a cache bounded to max entries whose verdicts
// expire ttl after insertion and stay servable as stale fallbacks for
// maxStale beyond that. now is the clock (injectable for TTL tests).
func newVerdictCache(max int, ttl, maxStale time.Duration, now func() time.Time) *verdictCache {
	if now == nil {
		now = time.Now
	}
	return &verdictCache{
		max:      max,
		ttl:      ttl,
		maxStale: maxStale,
		now:      now,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the fresh verdict cached under key. An expired entry
// counts as a miss (recorded in expiries as well); it is removed only
// once it is too stale even for the fallback path.
func (c *verdictCache) get(key string) (DomainVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return DomainVerdict{}, false
	}
	e := el.Value.(*cacheEntry)
	if age := c.now().Sub(e.stored); age >= c.ttl {
		if age >= c.ttl+c.maxStale {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.expiries++
		c.misses++
		return DomainVerdict{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return e.v, true
}

// getStale is the degradation read: it returns whatever entry is still
// within the stale-serve budget (ttl + maxStale), reporting whether it
// is past its TTL. The pipeline uses it only after live assessment has
// failed; a returned stale verdict is counted and must be marked
// Stale before serving.
func (c *verdictCache) getStale(key string) (v DomainVerdict, stale, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		return DomainVerdict{}, false, false
	}
	e := el.Value.(*cacheEntry)
	age := c.now().Sub(e.stored)
	if age >= c.ttl+c.maxStale {
		c.order.Remove(el)
		delete(c.entries, key)
		return DomainVerdict{}, false, false
	}
	// Serving keeps the entry warm: while the backends are down it must
	// not be the LRU victim.
	c.order.MoveToFront(el)
	if age >= c.ttl {
		c.staleServes++
		return e.v, true, true
	}
	return e.v, false, true
}

// put stores a verdict under key, evicting the least recently used
// entry beyond the bound. Storing under an existing key refreshes both
// the verdict and its TTL.
func (c *verdictCache) put(key string, v DomainVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.v, e.stored = v, c.now()
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, v: v, stored: c.now()})
	c.entries[key] = el
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *verdictCache) stats() (hits, misses, expiries, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.expiries, c.evictions
}

// staleServed reports how many expired entries the fallback path has
// handed out.
func (c *verdictCache) staleServed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staleServes
}
