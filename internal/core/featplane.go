package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/featcache"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ngram"
	"pharmaverify/internal/parallel"
)

// trainingPlane is the shared feature plane of one (snapshot, terms,
// seed) training corpus: the rendered documents plus, while at least
// one training run holds it acquired, the prebuilt n-gram graph of
// every document. All consumers of the corpus — ensemble-library
// folds, the NGG fold featurization, the ranking text ranks — read the
// same plane instead of re-rendering and re-building graphs per fold
// and per member.
//
// Lifetime and aliasing contract (DESIGN §13):
//
//   - The plane itself (documents, labels, names) is cheap and lives
//     in the content-keyed feature cache like every derived artifact.
//   - The document graphs are the expensive part (~0.7 MB per
//     1000-term document), so they are reference-counted: acquire
//     builds them on first use, release drops them when the last
//     holder leaves. Memory is bounded by one corpus of graphs per
//     *concurrently training* configuration, not per cached one.
//   - Everything handed out is read-only and shared: graphs are only
//     ever read (Merge reads its argument; CompareBoth reads both
//     sides), feature rows are freshly allocated per call. Callers
//     must not mutate a returned graph or dataset vector.
//   - Each graph build epoch gets a generation stamp from a global
//     counter. A consumer that acquires once sees one generation for
//     its whole run; tests use the stamp to pin that sharing happened
//     (no silent rebuild mid-run).
//
// Rebuilt graphs are bit-identical (FromDocument is deterministic), so
// generations never change results — the stamp only makes the
// plane's reuse observable.
type trainingPlane struct {
	// Docs holds the rendered (subsampled) document texts, in snapshot
	// order. Labels and Names align with Docs.
	Docs   []string
	Labels []int
	Names  []string

	mu         sync.Mutex
	refs       int
	generation uint64
	graphs     []*ngram.Graph
}

// planeGenerations stamps graph build epochs across all planes.
var planeGenerations atomic.Uint64

// trainingPlaneFor returns the shared plane for a corpus, memoized in
// the feature cache under the training scope. The returned plane holds
// no graphs until acquired.
func trainingPlaneFor(snap *dataset.Snapshot, terms int, seed int64) *trainingPlane {
	key := fmt.Sprintf("plane|%s|%d|%d", snap.ContentHash(), terms, seed)
	v, _ := featureCache.DoScoped(featcache.ScopeTraining, key, func() (any, error) {
		return &trainingPlane{
			Docs:   nggDocuments(snap, terms, seed),
			Labels: snap.Labels(),
			Names:  snap.Domains(),
		}, nil
	})
	return v.(*trainingPlane)
}

// acquire pins the plane's document graphs, building them (once, in
// parallel) if no other holder has them, and returns the build epoch's
// generation stamp. Every acquire must be paired with a release;
// between the two, the plane's graph-reading methods are valid and the
// graphs are guaranteed stable.
func (p *trainingPlane) acquire() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs++
	if p.graphs == nil {
		plan := parallel.PlanGrainFor("plane-build", 0, 1, len(p.Docs))
		graphs := make([]*ngram.Graph, len(p.Docs))
		parallel.ForGrain(len(p.Docs), plan.DocWorkers, plan.DocGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				graphs[i] = ngram.FromDocument(p.Docs[i])
			}
		})
		p.graphs = graphs
		p.generation = planeGenerations.Add(1)
	}
	return p.generation
}

// release drops one holder's pin; the last release frees the graphs.
// (While any holder remains, neither release nor a concurrent acquire
// writes p.graphs, so holders read it without the lock.)
func (p *trainingPlane) release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs--
	if p.refs <= 0 {
		p.refs = 0
		p.graphs = nil
	}
}

// classGraphs merges the prebuilt document graphs listed in classIdx
// into per-class graphs, exactly as nggClassGraphs does from scratch:
// same merge order, hence bit-identical class graphs. Requires a held
// acquire.
func (p *trainingPlane) classGraphs(classIdx []int) (legit, illegit *ngram.Graph) {
	legit, illegit = ngram.New(), ngram.New()
	for _, i := range classIdx {
		if p.Labels[i] == ml.Legitimate {
			legit.Merge(p.graphs[i])
		} else {
			illegit.Merge(p.graphs[i])
		}
	}
	return legit, illegit
}

// featureDataset builds one fold's 8-feature similarity dataset from
// the prebuilt graphs: class graphs merged from classIdx, then one
// CompareBoth per document — no graph construction at all. Rows are
// bit-identical to NGGFeatureDataset's. workers/grain bound the
// document fan-out (a GrainPlan's DocWorkers/DocGrain).
func (p *trainingPlane) featureDataset(classIdx []int, workers, grain int) *ml.Dataset {
	legit, illegit := p.classGraphs(classIdx)
	feats := make([][]float64, len(p.Docs))
	parallel.ForGrain(len(p.Docs), workers, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			feats[i] = ngram.Features(p.graphs[i], legit, illegit)
		}
	})
	ds := &ml.Dataset{Dim: 8}
	for i, f := range feats {
		name := ""
		if p.Names != nil {
			name = p.Names[i]
		}
		ds.Add(ml.NewVector(f), p.Labels[i], name)
	}
	return ds
}

// textRanks computes the Equation-3 ranking score of every document
// against class graphs merged from classIdx, scaled to [0,1] —
// bit-identical to the DocTextRank path over the same half split.
func (p *trainingPlane) textRanks(classIdx []int, workers, grain int) []float64 {
	legit, illegit := p.classGraphs(classIdx)
	out := make([]float64, len(p.Docs))
	parallel.ForGrain(len(p.Docs), workers, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ngram.TextRank(p.graphs[i], legit, illegit) / 8
		}
	})
	return out
}

// FeatureCacheScopeStats reports the shared feature cache's hit/miss
// counters split by scope. The training and serving scopes are always
// present (zeroed when untouched) so /metrics and the bench output can
// render both unconditionally; unscoped traffic, if any, appears under
// "".
func FeatureCacheScopeStats() map[string]featcache.CacheStats {
	out := featureCache.StatsByScope()
	for _, scope := range []string{featcache.ScopeTraining, featcache.ScopeServing} {
		if _, ok := out[scope]; !ok {
			out[scope] = featcache.CacheStats{}
		}
	}
	return out
}
