// Package core implements the paper's contribution: the Online Pharmacy
// Classification (OPC, Problem 1) and Online Pharmacy Ranking (OPR,
// Problem 2) pipelines, combining text models (TF-IDF term vectors and
// character N-Gram Graphs), network analysis (TrustRank over the
// Algorithm-1 link graph), ensemble selection over the model library,
// and the cumulative ranking rank(p) = textRank(p) + networkRank(p).
package core

import (
	"fmt"
	"math/rand"

	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/bayes"
	"pharmaverify/internal/ml/mlp"
	"pharmaverify/internal/ml/sampling"
	"pharmaverify/internal/ml/svm"
	"pharmaverify/internal/ml/tree"
)

// ClassifierKind names the learners with the paper's abbreviations
// (Table 2).
type ClassifierKind string

const (
	// NBM is the Naïve Bayesian Multinomial classifier (term counts).
	NBM ClassifierKind = "NBM"
	// NB is the Gaussian Naïve Bayes classifier.
	NB ClassifierKind = "NB"
	// SVM is the linear support vector machine.
	SVM ClassifierKind = "SVM"
	// J48 is the C4.5 decision tree.
	J48 ClassifierKind = "J48"
	// MLP is the multilayer perceptron.
	MLP ClassifierKind = "MLP"
)

// SamplingKind names the class-rebalancing options (Table 2).
type SamplingKind string

const (
	// NoSampling keeps the natural class distribution ("NO").
	NoSampling SamplingKind = "NO"
	// Subsampling randomly undersamples the majority class ("SUB").
	Subsampling SamplingKind = "SUB"
	// SMOTE oversamples the minority class synthetically.
	SMOTE SamplingKind = "SMOTE"
)

// Representation selects the text model of Section 4.1.
type Representation string

const (
	// TFIDF is the Term Vector model with TF-IDF weights.
	TFIDF Representation = "TF-IDF"
	// NGramGraphs is the character N-Gram Graphs model.
	NGramGraphs Representation = "N-Gram Graphs"
)

// NewClassifier constructs an untrained learner of the given kind.
// seed controls the stochastic learners (SVM permutation, MLP init).
func NewClassifier(kind ClassifierKind, seed int64) (ml.Classifier, error) {
	switch kind {
	case NBM:
		return bayes.NewMultinomial(), nil
	case NB:
		return bayes.NewGaussian(), nil
	case SVM:
		s := svm.NewLinear()
		s.Seed = seed
		s.MaxIter = 300
		// Paper parity: Weka's SMO emits discrete class outputs by
		// default, which is why the paper's SVM trails NBM on AUC while
		// winning on accuracy. Callers that need calibrated
		// probabilities (the Verifier, ensembles) re-enable Platt
		// scaling via SetCalibrate(true).
		s.Calibrate = false
		return s, nil
	case J48:
		return tree.NewC45(), nil
	case MLP:
		n := mlp.New()
		n.Seed = seed
		n.Epochs = 200
		return n, nil
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %q", kind)
	}
}

// Sampler returns the eval.Sampler for a sampling kind (nil for the
// natural distribution).
func Sampler(kind SamplingKind) (eval.Sampler, error) {
	switch kind {
	case "", NoSampling:
		return nil, nil
	case Subsampling:
		return func(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
			return sampling.Undersample(ds, rng)
		}, nil
	case SMOTE:
		return func(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
			return sampling.SMOTE(ds, rng, sampling.SMOTEConfig{K: 5})
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown sampling kind %q", kind)
	}
}

// MajorityBaseline is the strawman classifier from Section 6.2: always
// predict the majority (illegitimate) class. Its 88% accuracy on the
// natural distribution is the floor every real model must clear.
type MajorityBaseline struct{ majority int }

// Fit memorizes the majority class.
func (m *MajorityBaseline) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	if ds.CountClass(ml.Legitimate) > ds.CountClass(ml.Illegitimate) {
		m.majority = ml.Legitimate
	} else {
		m.majority = ml.Illegitimate
	}
	return nil
}

// Prob returns 1 or 0 according to the majority class.
func (m *MajorityBaseline) Prob(ml.Vector) float64 { return float64(m.majority) }

// Predict returns the majority class.
func (m *MajorityBaseline) Predict(ml.Vector) int { return m.majority }

// Name implements ml.Named.
func (m *MajorityBaseline) Name() string { return "Majority" }

var _ ml.Classifier = (*MajorityBaseline)(nil)
