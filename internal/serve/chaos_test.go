package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml"
)

// The chaos harness: scripted per-source error/latency/hang faults
// driven through the real HTTP serving path, asserting that the
// resilience layer degrades deterministically — breaker transitions on
// a pinned schedule, stale fallbacks instead of errors, no 5xx under
// total source failure — and that verdicts return to bit-identical
// agreement with the offline pipeline once faults clear.

// getBody fetches one URL and returns its status and body.
func getBody(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// readyzSources decodes the per-source entries of a /readyz body.
func readyzSources(t testing.TB, body string) map[string]map[string]any {
	t.Helper()
	var payload struct {
		Sources []map[string]any `json:"sources"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("bad readyz body %q: %v", body, err)
	}
	out := make(map[string]map[string]any, len(payload.Sources))
	for _, s := range payload.Sources {
		out[s["name"].(string)] = s
	}
	return out
}

// replaceSources swaps the server's evidence backends for scripted
// ones, each behind a fresh guard built from the server's own config.
func replaceSources(s *Server, srcs ...EvidenceSource) {
	guarded := make([]*guardedSource, len(srcs))
	for i, src := range srcs {
		guarded[i] = newGuardedSource(src, s.cfg, s.met)
	}
	s.sources = guarded
}

// TestBreakerOpensAndRecoversOverHTTP drives the full lifecycle
// through the serving path on an injected clock: failures open the
// breaker at exactly the configured threshold, an open breaker
// fast-fails, /readyz and /metrics surface the state, and recovery is
// one half-open probe away once the cooldown lapses — all while every
// response stays a 200 (per-domain errors ride inside the envelope;
// chaos never produces a 5xx).
func TestBreakerOpensAndRecoversOverHTTP(t *testing.T) {
	w, _, _ := testVerifier(t)
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	s, ts := newTestServer(t, Config{
		Fetcher:         w,
		BreakerWindow:   4,
		BreakerFailures: 2,
		BreakerCooldown: 10 * time.Second,
		BreakerProbes:   1,
		MaxStale:        -1, // no stale fallback: errors must surface
		now:             clock.now,
	})
	chaos := newScriptedSource("chaos", "err", 0.9)
	replaceSources(s, chaos)
	domain := pickDomain(t, true)

	verify := func() DomainVerdict {
		t.Helper()
		code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain, Refresh: true})
		if code != http.StatusOK {
			t.Fatalf("verify under chaos returned %d, want 200", code)
		}
		return resp.Results[0]
	}

	// Failures 1 and 2: the second crosses the threshold and opens.
	if v := verify(); !strings.Contains(v.Error, "insufficient evidence") {
		t.Fatalf("verdict with the only source failing = %+v", v)
	}
	if got := s.sources[0].BreakerState(); got != "closed" {
		t.Fatalf("breaker after 1 failure = %q, want closed", got)
	}
	verify()
	if got := s.sources[0].BreakerState(); got != "open" {
		t.Fatalf("breaker after 2 failures = %q, want open", got)
	}

	// Open: the source is not consulted at all — fast-fail.
	before := chaos.callCount()
	verify()
	if got := chaos.callCount(); got != before {
		t.Errorf("open breaker still consulted the source (%d -> %d calls)", before, got)
	}

	// The state is visible on /readyz and /metrics.
	code, body := getBody(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz returned %d", code)
	}
	src := readyzSources(t, body)["chaos"]
	if src == nil || src["breaker"] != "open" || src["healthy"] != false {
		t.Errorf("readyz source entry %v, want breaker=open healthy=false", src)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pharmaverify_source_breaker_state{source="chaos"} 2`,
		`pharmaverify_source_breaker_transitions_total{source="chaos",state="open"} 1`,
		`pharmaverify_source_breaker_rejections_total{source="chaos"} 1`,
		"pharmaverify_quorum_failures_total 3",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Cooldown lapsed + backend recovered: one successful probe closes
	// it and the verdict is live again.
	clock.advance(10 * time.Second)
	chaos.setMode("ok")
	v := verify()
	if v.Error != "" || !v.Legitimate {
		t.Fatalf("recovered verdict = %+v, want a live legitimate ruling", v)
	}
	if got := s.sources[0].BreakerState(); got != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", got)
	}
	_, mbody = getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pharmaverify_source_breaker_state{source="chaos"} 0`,
		`pharmaverify_source_breaker_transitions_total{source="chaos",state="half-open"} 1`,
		`pharmaverify_source_breaker_transitions_total{source="chaos",state="closed"} 1`,
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStaleFallbackServesExpiredVerdict: when live assessment fails
// entirely, an expired cache entry within the stale-serve budget
// answers — marked stale — and past the budget the error finally
// surfaces.
func TestStaleFallbackServesExpiredVerdict(t *testing.T) {
	w, _, _ := testVerifier(t)
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	s, ts := newTestServer(t, Config{
		Fetcher:  w,
		CacheTTL: time.Minute,
		MaxStale: 10 * time.Minute,
		now:      clock.now,
	})
	chaos := newScriptedSource("chaos", "ok", 0.8)
	replaceSources(s, chaos)
	domain := pickDomain(t, true)

	// Prime the cache with a live verdict.
	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("priming verify failed: %d %+v", code, resp.Results)
	}
	if resp.Results[0].Stale {
		t.Fatal("fresh verdict marked stale")
	}

	// TTL expired + backend down: the stale fallback answers, marked.
	clock.advance(2 * time.Minute)
	chaos.setMode("err")
	code, resp, _ = postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK {
		t.Fatalf("degraded verify returned %d, want 200", code)
	}
	v := resp.Results[0]
	if v.Error != "" || !v.Stale || !v.Cached {
		t.Fatalf("degraded verdict = %+v, want a marked stale cache serve", v)
	}
	if v.Legitimate != resp.Results[0].Legitimate {
		t.Fatalf("stale verdict flipped the ruling: %+v", v)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(mbody, "pharmaverify_stale_verdicts_total 1") {
		t.Error("stale serve not counted on /metrics")
	}
	if !strings.Contains(mbody, `pharmaverify_domains_total{outcome="stale"} 1`) {
		t.Error("stale outcome missing from the domains metric")
	}

	// Beyond ttl + MaxStale even the fallback is exhausted: honesty.
	clock.advance(10 * time.Minute)
	code, resp, _ = postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK {
		t.Fatalf("exhausted-fallback verify returned %d, want 200", code)
	}
	if got := resp.Results[0]; got.Error == "" || got.Stale {
		t.Fatalf("verdict beyond the stale budget = %+v, want an error", got)
	}
}

// TestQuorumRequiresMinEvidence: with MinEvidence 2, a single
// contributing source is not a verdict; once a second source votes, the
// fusion is the equal-weight average over both.
func TestQuorumRequiresMinEvidence(t *testing.T) {
	w, _, _ := testVerifier(t)
	s, ts := newTestServer(t, Config{Fetcher: w, MinEvidence: 2, MaxStale: -1})
	a := newScriptedSource("alpha", "ok", 0.9)
	b := newScriptedSource("beta", "abstain", 0.3)
	replaceSources(s, a, b)
	domain := pickDomain(t, true)

	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain, Refresh: true})
	if code != http.StatusOK {
		t.Fatalf("verify returned %d", code)
	}
	if v := resp.Results[0]; !strings.Contains(v.Error, "insufficient evidence") ||
		!strings.Contains(v.Error, "1 of 2") {
		t.Fatalf("single-source verdict = %+v, want a quorum failure naming 1 of 2", v)
	}

	b.setMode("ok")
	code, resp, _ = postVerify(t, ts.URL, VerifyRequest{Domain: domain, Refresh: true})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("two-source verify failed: %d %+v", code, resp.Results)
	}
	v := resp.Results[0]
	if len(v.Sources) != 2 || !v.Legitimate { // (0.9 + 0.3) / 2 = 0.6
		t.Fatalf("fused verdict = %+v, want both sources voting legitimate", v)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(mbody, "pharmaverify_quorum_failures_total 1") {
		t.Error("quorum failure not counted on /metrics")
	}
}

// TestReloadFailureCounterExposed: a failed SIGHUP model reload is
// visible on /metrics (satellite: reload-failure observability).
func TestReloadFailureCounterExposed(t *testing.T) {
	w, _, _ := testVerifier(t)
	s, ts := newTestServer(t, Config{Fetcher: w})
	_, mbody := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(mbody, "pharmaverify_model_reload_failures_total 0") {
		t.Fatal("reload-failure counter not exposed at 0")
	}
	s.RecordReloadFailure()
	s.RecordReloadFailure()
	_, mbody = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(mbody, "pharmaverify_model_reload_failures_total 2") {
		t.Error("reload failures not counted on /metrics")
	}
}

// flappingRegistry is a RegistryLookup whose behaviour the soak flips
// between phases: abstaining (healthy), erroring, and hanging until the
// per-source deadline kills the assessment.
type flappingRegistry struct {
	mu   sync.Mutex
	mode string // "abstain" | "err" | "hang"
}

func (f *flappingRegistry) setMode(m string) {
	f.mu.Lock()
	f.mode = m
	f.mu.Unlock()
}

func (f *flappingRegistry) Lookup(ctx context.Context, domain string) (bool, bool, error) {
	f.mu.Lock()
	mode := f.mode
	f.mu.Unlock()
	switch mode {
	case "err":
		return false, false, fmt.Errorf("registry backend down")
	case "hang":
		<-ctx.Done()
		return false, false, ctx.Err()
	default:
		return false, false, nil
	}
}

// soakPool picks a deterministic mixed-label set of domains.
func soakPool(t *testing.T, perClass int) []string {
	t.Helper()
	w, _, _ := testVerifier(t)
	domains := w.Domains()
	sort.Strings(domains)
	var legit, illegit []string
	for _, d := range domains {
		if w.Labels()[d] == ml.Legitimate && len(legit) < perClass {
			legit = append(legit, d)
		}
		if w.Labels()[d] == ml.Illegitimate && len(illegit) < perClass {
			illegit = append(illegit, d)
		}
	}
	if len(legit) < perClass || len(illegit) < perClass {
		t.Fatalf("world too small for a %d-per-class pool", perClass)
	}
	return append(legit, illegit...)
}

// TestChaosSoakServingPath is the acceptance soak of the resilience
// layer: a flaky fetch path (seeded transient failures + latency
// spikes, always within the retry budget) under a registry backend that
// flips healthy → erroring → hanging → healthy, driven by concurrent
// clients. Asserts: no 5xx ever, the registry breaker opens under
// sustained failure and recovers after it clears, and the final
// verdicts are bit-identical to the offline (text+network)/2 pipeline.
// Run under -race by the chaos-soak CI job.
func TestChaosSoakServingPath(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	w, snapshot, v := testVerifier(t)

	// Fetch-level chaos: 25% transient failures capped below the retry
	// budget (every page still completes, so crawls — and therefore
	// verdicts — stay deterministic) plus 2ms latency spikes on 10% of
	// attempts.
	fi := crawler.NewFaultInjector(w, crawler.FaultConfig{
		Seed:                42,
		TransientRate:       0.25,
		MaxTransientPerPage: 1,
		LatencySpike:        2 * time.Millisecond,
		SpikeRate:           0.1,
	})
	reg := &flappingRegistry{mode: "abstain"}
	s, ts := newTestServer(t, Config{
		Fetcher:             fi,
		Workers:             4,
		GraphDirtyThreshold: 1,
		Registry:            reg,
		SourceTimeout:       40 * time.Millisecond,
		SourceConcurrency:   2,
		BreakerWindow:       8,
		BreakerFailures:     4,
		BreakerCooldown:     50 * time.Millisecond,
		BreakerProbes:       1,
	})
	pool := soakPool(t, 3)
	registry := s.sources[2]
	if registry.Name() != "registry" {
		t.Fatalf("source order changed: %q", registry.Name())
	}

	var (
		codeMu sync.Mutex
		codes  = map[int]int{}
	)
	sweep := func(rounds int) {
		t.Helper()
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					d := pool[(c+r)%len(pool)]
					body, _ := json.Marshal(VerifyRequest{Domain: d, Refresh: true})
					resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					codeMu.Lock()
					codes[resp.StatusCode]++
					codeMu.Unlock()
				}
			}(c)
		}
		wg.Wait()
	}

	// Phase 1 — healthy: every pool domain crawled and folded.
	sweep(len(pool))
	// Phase 2 — registry erroring: verdicts degrade to text+network,
	// the breaker trips.
	reg.setMode("err")
	sweep(len(pool))
	if got := registry.BreakerState(); got == "closed" {
		t.Error("registry breaker still closed after sustained errors")
	}
	// Phase 3 — registry hanging: per-source deadlines and the bulkhead
	// absorb it; the serving path keeps answering.
	reg.setMode("hang")
	sweep(len(pool))
	// Phase 4 — faults clear: the breaker recovers via half-open probes.
	reg.setMode("abstain")
	waitFor(t, func() bool {
		code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: pool[0], Refresh: true})
		return code == http.StatusOK && resp.Results[0].Error == "" &&
			registry.BreakerState() == "closed"
	}, "registry breaker closed after faults cleared")

	// No 5xx storm — no 5xx at all: per-domain failures ride inside 200
	// envelopes, overload is a 429.
	codeMu.Lock()
	for code, n := range codes {
		if code >= 500 {
			t.Errorf("soak produced %d responses with status %d", n, code)
		}
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("soak produced %d responses with unexpected status %d", n, code)
		}
	}
	codeMu.Unlock()

	// The breaker's journey is on the books.
	_, mbody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pharmaverify_source_breaker_transitions_total{source="registry",state="open"}`,
		`pharmaverify_source_breaker_transitions_total{source="registry",state="closed"}`,
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q after the soak", want)
		}
	}

	// With faults cleared, served verdicts are bit-identical to the
	// offline pipeline over the same crawl set (the convergence
	// guarantee survives the chaos).
	byDomain := map[string]dataset.Pharmacy{}
	for _, p := range snapshot.Pharmacies {
		byDomain[p.Domain] = p
	}
	batch := make([]dataset.Pharmacy, len(pool))
	for i, d := range pool {
		batch[i] = byDomain[d]
	}
	offline := v.Assess(batch)
	for i, d := range pool {
		code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: d, Refresh: true})
		if code != http.StatusOK || resp.Results[0].Error != "" {
			t.Fatalf("post-soak verify of %s: %d %+v", d, code, resp.Results)
		}
		assertMatchesOffline(t, resp.Results[0], offline[i])
	}
	if fi.Stats().Transient == 0 || fi.Stats().Spikes == 0 {
		t.Error("fault injector never fired — the soak exercised nothing")
	}
}

// TestServerCloseNoGoroutineLeaksUnderChaos: a server torn down while
// chaos is in full swing — hung evidence sources, hung fetches, a fast
// background refresh tick — leaks no goroutines once every bounded
// context unwinds (satellite: shutdown hygiene under -race).
func TestServerCloseNoGoroutineLeaksUnderChaos(t *testing.T) {
	w, _, v := testVerifier(t)
	baseline := runtime.NumGoroutine()

	fi := crawler.NewFaultInjector(w, crawler.FaultConfig{
		Seed:          7,
		TransientRate: 0.2,
		HangRate:      0.2, // unbounded hangs: only the fetch context ends them
	})
	s, err := New(v, Config{
		Fetcher:              fi,
		Crawl:                crawler.Config{FetchTimeout: 30 * time.Millisecond},
		MaxTimeout:           200 * time.Millisecond,
		SourceTimeout:        20 * time.Millisecond,
		GraphRefreshInterval: 2 * time.Millisecond,
		JitterSeed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos := newScriptedSource("chaos", "hang-ctx", 0) // unwinds with its context
	replaceSources(s, chaos)

	domains := soakPool(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			s.verifyDomain(ctx, s.model.Load(), domains[i%len(domains)], true)
		}(i)
	}
	wg.Wait()
	s.Close()

	// Detached flights (MaxTimeout), hung fetches (FetchTimeout), hung
	// assessments (SourceTimeout) and the refresh loop must all unwind.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 },
		fmt.Sprintf("goroutines back to baseline %d (now %d)", baseline, runtime.NumGoroutine()))
}
