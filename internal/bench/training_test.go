package bench

import (
	"strings"
	"testing"
	"time"

	"pharmaverify/internal/webgen"
)

// TestTrainingBenchmarksIdentity runs the training-path kernels at a
// short benchtime and checks the gate's invariants: both entries
// present, bit-identical to their naive references, non-degenerate
// measurements.
func TestTrainingBenchmarksIdentity(t *testing.T) {
	entries := RunTrainingBenchmarks(5 * time.Millisecond)
	want := map[string]bool{"ensemble-selection": true, "webgen-world": true}
	for _, e := range entries {
		if !want[e.ID] {
			t.Errorf("unexpected training entry %q", e.ID)
		}
		delete(want, e.ID)
		if !e.Identical {
			t.Errorf("training kernel %s: output differs from the naive reference", e.ID)
		}
		if e.NaiveNSOp <= 0 || e.KernelNSOp <= 0 {
			t.Errorf("training kernel %s: degenerate timing naive=%v kernel=%v", e.ID, e.NaiveNSOp, e.KernelNSOp)
		}
		if _, ok := kernelFloors[e.ID]; !ok {
			t.Errorf("training kernel %s has no hard floor in kernelFloors", e.ID)
		}
	}
	for id := range want {
		t.Errorf("training entry %q missing", id)
	}
}

// TestTrainingMeetsFloors asserts the tentpole's acceptance bars on
// this machine: ensemble selection at least 2x faster and 2x lighter
// in allocations than the retained reference, webgen generation past
// its own floors, both byte-identical.
func TestTrainingMeetsFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	entries := RunTrainingBenchmarks(50 * time.Millisecond)
	if err := CheckKernelRegression(entries, entries, 1.5); err != nil {
		t.Fatalf("fresh training run fails its own regression check: %v", err)
	}
	for _, e := range entries {
		if e.ID == "ensemble-selection" {
			if e.Speedup < 2 || e.AllocRatio < 2 {
				t.Errorf("ensemble-selection %0.2fx time / %0.2fx allocs, want >= 2x on both", e.Speedup, e.AllocRatio)
			}
		}
	}
}

// TestCheckKernelRegressionCoversTraining pins that the shared gate
// judges training entries by their hard floors like any kernel entry.
func TestCheckKernelRegressionCoversTraining(t *testing.T) {
	weak := KernelEntry{ID: "ensemble-selection", Speedup: 1.4, AllocRatio: 5, KernelAllocsOp: 3, Identical: true}
	base := []KernelEntry{{ID: "ensemble-selection", Speedup: 1.4, AllocRatio: 5, KernelAllocsOp: 3, Identical: true}}
	if err := CheckKernelRegression([]KernelEntry{weak}, base, 1.5); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("ensemble-selection below the 2x floor should fail, got %v", err)
	}
}

// TestWorldsIdenticalDetectsDivergence exercises the comparator the
// webgen-world identity check relies on.
func TestWorldsIdenticalDetectsDivergence(t *testing.T) {
	a := webgen.Generate(trainingWebgenConfig)
	b := webgen.Generate(trainingWebgenConfig)
	if !worldsIdentical(a, b) {
		t.Fatal("identical configurations generated different worlds")
	}
	d := b.Domains()[0]
	b.Site(d).Pages[b.Site(d).Paths[0]] += "x"
	if worldsIdentical(a, b) {
		t.Fatal("mutated page not detected")
	}
}
