// Package webgen generates a deterministic synthetic web of online
// pharmacies. It substitutes for the proprietary PharmaVerComp crawls
// used in the paper (see DESIGN.md): sites carry the same textual and
// link-structure signals the paper documents for legitimate and
// illegitimate pharmacies, so the downstream classifiers and rankers
// exercise the same code paths and reproduce the published result
// shapes.
//
// Everything is a pure function of (Config.Seed, Config.Snapshot,
// domain): re-generating a world yields byte-identical pages.
package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Config controls world generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Snapshot selects the crawl epoch: 1 for Dataset 1, 2 for the
	// re-crawl six months later (Dataset 2). Snapshot 2 re-generates
	// the same legitimate domains with fresh text and drifts the
	// illegitimate text distribution toward legitimate vocabulary.
	Snapshot int
	// NumLegit and NumIllegit size the two classes (Table 1: 167/1292
	// for Dataset 1, 167/1275 for Dataset 2).
	NumLegit, NumIllegit int
	// IllegitOffset shifts illegitimate domain indices so snapshots
	// have disjoint illegitimate domains, as in the paper.
	IllegitOffset int
	// MinPages/MaxPages bound the page count per site (default 6/18).
	MinPages, MaxPages int
	// MinWords/MaxWords bound the words per page (default 60/130).
	MinWords, MaxWords int
	// NetworkSize is the number of illegitimate sites per affiliate
	// network, each anchored on a hub pharmacy (default 50).
	NetworkSize int
	// IsolatedLegitFraction is the share of legitimate pharmacies with
	// no links into the trusted web (the paper's poorly-ranked
	// "new prescription" outliers; default 0.25).
	IsolatedLegitFraction float64
	// EvaderFraction is the share of illegitimate pharmacies that
	// avoid affiliate networks and imitate legitimate sites (the
	// paper's illegitimate ranking outliers; default 0.02).
	EvaderFraction float64
}

func (c Config) withDefaults() Config {
	if c.Snapshot == 0 {
		c.Snapshot = 1
	}
	if c.NumLegit == 0 {
		c.NumLegit = 167
	}
	if c.NumIllegit == 0 {
		c.NumIllegit = 1292
	}
	if c.MinPages == 0 {
		c.MinPages = 6
	}
	if c.MaxPages == 0 {
		c.MaxPages = 18
	}
	if c.MinWords == 0 {
		c.MinWords = 60
	}
	if c.MaxWords == 0 {
		c.MaxWords = 130
	}
	if c.NetworkSize == 0 {
		c.NetworkSize = 50
	}
	if c.IsolatedLegitFraction == 0 {
		c.IsolatedLegitFraction = 0.25
	}
	if c.EvaderFraction == 0 {
		c.EvaderFraction = 0.02
	}
	return c
}

// Dataset1Config returns the paper's Dataset 1 shape (167 legitimate,
// 1292 illegitimate pharmacies).
func Dataset1Config(seed int64) Config {
	return Config{Seed: seed, Snapshot: 1, NumLegit: 167, NumIllegit: 1292}
}

// Dataset2Config returns Dataset 2: the same 167 legitimate domains
// re-crawled six months later plus 1275 fresh illegitimate domains
// (disjoint from Dataset 1's, via the offset).
func Dataset2Config(seed int64) Config {
	return Config{Seed: seed, Snapshot: 2, NumLegit: 167, NumIllegit: 1275, IllegitOffset: 1292}
}

// Site is one generated pharmacy website.
type Site struct {
	Domain     string
	Legitimate bool
	// Hub marks the anchor pharmacy of an illegitimate affiliate
	// network; HubDomain is the hub a networked member links to.
	Hub       bool
	HubDomain string
	// Isolated marks sites with no links into the well-known web
	// (legitimate "new prescription" outliers).
	Isolated bool
	// Evader marks illegitimate sites that imitate legitimate ones in
	// both text and links.
	Evader bool
	// Pages maps URL paths to HTML documents; Paths preserves a
	// deterministic order with "/" first.
	Pages map[string]string
	Paths []string

	// externals holds the pre-assigned well-known endpoint links
	// (see assignExternals).
	externals []string
}

// World is a generated set of pharmacy sites. It implements the
// crawler's Fetcher contract via the Fetch method.
type World struct {
	cfg     Config
	sites   map[string]*Site
	domains []string
}

// Generate builds the world for a configuration.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{cfg: cfg, sites: make(map[string]*Site)}

	type plan struct {
		domain string
		legit  bool
		index  int
	}
	var plans []plan
	for i := 0; i < cfg.NumLegit; i++ {
		plans = append(plans, plan{legitDomain(i), true, i})
	}
	for i := 0; i < cfg.NumIllegit; i++ {
		plans = append(plans, plan{illegitDomain(i + cfg.IllegitOffset), false, i + cfg.IllegitOffset})
	}

	// First pass: create sites and assign roles (hub domains must exist
	// before members can link to them).
	var hubs []string
	for _, p := range plans {
		s := &Site{Domain: p.domain, Legitimate: p.legit}
		if p.legit {
			s.Isolated = roleDraw(cfg.Seed, p.domain, "isolated") < cfg.IsolatedLegitFraction
		} else {
			s.Evader = roleDraw(cfg.Seed, p.domain, "evader") < cfg.EvaderFraction
			s.Hub = !s.Evader && p.index%cfg.NetworkSize == 0
			if s.Hub {
				hubs = append(hubs, p.domain)
			}
		}
		w.sites[p.domain] = s
		w.domains = append(w.domains, p.domain)
	}
	sort.Strings(w.domains)

	// Second pass: attach networked members to hubs, assign the
	// well-known external endpoints with exact per-endpoint counts
	// (so the Table-11 ordering is structural, not sampling luck), and
	// render pages.
	for _, p := range plans {
		s := w.sites[p.domain]
		if !s.Legitimate && !s.Hub && !s.Evader && len(hubs) > 0 {
			s.HubDomain = hubs[(p.index/cfg.NetworkSize)%len(hubs)]
		}
	}
	w.assignExternals()
	for _, p := range plans {
		w.renderSite(w.sites[p.domain])
	}
	return w
}

// assignExternals distributes the weighted well-known endpoints over the
// sites of each class with exact counts: endpoint e with probability P
// is linked by round(P·n) of the n eligible sites, selected by a
// deterministic per-(site,endpoint) hash order. This keeps the expected
// distributions of the paper's Table 11 while eliminating binomial rank
// swaps between adjacent endpoints.
func (w *World) assignExternals() {
	var legitSites, illegitSites []*Site
	for _, d := range w.domains {
		s := w.sites[d]
		switch {
		case s.Legitimate && !s.Isolated:
			legitSites = append(legitSites, s)
		case !s.Legitimate && !s.Evader:
			illegitSites = append(illegitSites, s)
		}
	}
	assign := func(sites []*Site, ep weightedEndpoint) {
		k := int(ep.P*float64(len(sites)) + 0.5)
		if k <= 0 {
			return
		}
		order := make([]*Site, len(sites))
		copy(order, sites)
		sort.Slice(order, func(i, j int) bool {
			return roleDraw(w.cfg.Seed, order[i].Domain, "ep|"+ep.Domain) <
				roleDraw(w.cfg.Seed, order[j].Domain, "ep|"+ep.Domain)
		})
		if k > len(order) {
			k = len(order)
		}
		for _, s := range order[:k] {
			s.externals = append(s.externals, "http://www."+ep.Domain+"/")
		}
	}
	for _, ep := range legitEndpoints {
		assign(legitSites, ep)
	}
	for _, ep := range illegitEndpoints {
		assign(illegitSites, ep)
	}
	// Illegitimate storefronts sprinkle links to popular trusted sites
	// (social buttons, analytics) so the network signal stays noisy.
	for _, ep := range legitEndpoints[:5] {
		assign(illegitSites, weightedEndpoint{Domain: ep.Domain, P: 0.12})
	}
}

// Domains returns all site domains in sorted order.
func (w *World) Domains() []string { return append([]string(nil), w.domains...) }

// Site returns the site for a domain, or nil.
func (w *World) Site(domain string) *Site { return w.sites[domain] }

// notFoundError marks unknown domains/pages as permanent failures (via
// the Permanent() contract of internal/crawler), so a retrying crawler
// does not burn its retry budget on pages that can never exist.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string   { return e.msg }
func (e *notFoundError) Permanent() bool { return true }

// Fetch returns the HTML of a page, satisfying the crawler Fetcher
// contract. Unknown domains or paths yield a permanent error.
func (w *World) Fetch(domain, path string) (string, error) {
	s, ok := w.sites[domain]
	if !ok {
		return "", &notFoundError{msg: fmt.Sprintf("webgen: unknown domain %q", domain)}
	}
	if path == "" {
		path = "/"
	}
	html, ok := s.Pages[path]
	if !ok {
		return "", &notFoundError{msg: fmt.Sprintf("webgen: %s has no page %q", domain, path)}
	}
	return html, nil
}

// Labels returns pharmacy domain → class (1 legitimate, 0
// illegitimate). Attached auxiliary sites (directories) carry no label
// and are excluded.
func (w *World) Labels() map[string]int {
	m := make(map[string]int, len(w.domains))
	for _, d := range w.domains {
		if w.sites[d].Legitimate {
			m[d] = 1
		} else {
			m[d] = 0
		}
	}
	return m
}

func legitDomain(i int) string {
	return fmt.Sprintf("%s%d-pharmacy.com", legitSiteNames[i%len(legitSiteNames)], i)
}

var illegitTLDs = []string{".com", ".net", ".biz", ".info", ".ru", ".su", ".in"}

func illegitDomain(i int) string {
	name := illegitSiteNames[i%len(illegitSiteNames)]
	return fmt.Sprintf("%s%d%s", name, i, illegitTLDs[i%len(illegitTLDs)])
}

// siteRNG derives a deterministic random stream for one site in one
// snapshot.
func siteRNG(seed int64, snapshot int, domain, salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s", seed, snapshot, domain, salt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// roleDraw is a snapshot-independent uniform draw in [0,1) for stable
// role assignment (roles must not flip between snapshots).
func roleDraw(seed int64, domain, role string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|role|%s|%s", seed, domain, role)
	return rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
}
