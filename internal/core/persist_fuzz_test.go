package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadVerifier feeds mutated model files to LoadVerifier: whatever
// the corruption — truncation, bit flips, type confusion, hostile JSON
// — loading must either fail with a descriptive error or produce a
// verifier that can itself be saved again. It must never panic and
// never half-restore.
func FuzzLoadVerifier(f *testing.F) {
	snap := testSnapshot(f, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 100, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                  // truncated mid-record
	f.Add(valid[:len(valid)-1])                  // missing final byte
	f.Add([]byte{})                              // empty file
	f.Add([]byte("{}"))                          // valid JSON, no fields
	f.Add([]byte(`{"textKind":"SVM"}`))          // missing models
	f.Add([]byte(`{"textKind":12,"text":"no"}`)) // type confusion
	f.Add([]byte(`{"textKind":"NOPE","vocabulary":{},"text":{},"network":{}}`))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadVerifier(bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatal("LoadVerifier returned both a verifier and an error")
			}
			return
		}
		// Whatever loaded must be self-consistent enough to re-save (a
		// failed re-save is a legal rejection of a degenerate-but-
		// parseable model, but it must not panic either).
		var out bytes.Buffer
		_ = got.Save(&out)

		if bytes.Equal(data, valid) {
			// The untouched model must round-trip bit-exactly.
			if !bytes.Equal(out.Bytes(), valid) {
				t.Fatal("save→load→save of the valid model is not idempotent")
			}
		}
	})
}

func TestLoadVerifierDescriptiveErrors(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name string
		data []byte
		want []string // substrings the error must contain
	}{
		{"empty", nil, []string{"empty input"}},
		{"truncated", valid[:len(valid)/2], []string{"truncated", "byte"}},
		{"no-fields", []byte("{}"), []string{"textKind"}},
		{"no-vocab", []byte(`{"textKind":"SVM"}`), []string{"vocabulary"}},
		{"no-text", []byte(`{"textKind":"SVM","vocabulary":{}}`), []string{`"text"`, "SVM"}},
		{"no-network", []byte(`{"textKind":"SVM","vocabulary":{},"text":{"w":[]}}`), []string{"network"}},
		{"type-confusion", []byte(`{"textKind":["SVM"]}`), []string{"textKind", "ClassifierKind"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadVerifier(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt input loaded without error")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}
