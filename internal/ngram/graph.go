// Package ngram implements the character N-Gram Graph text
// representation of Giannakopoulos et al. used by the paper (§4.1.2):
// vertices are character n-grams, weighted edges record how often two
// n-grams co-occur within a sliding window, class graphs are built by
// merging document graphs with a running-average update, and documents
// are compared to class graphs through the Containment (CS), Size (SS),
// Value (VS) and Normalized Value (NVS) similarities.
//
// The paper's configuration Lmin = Lmax = Dwin = 4 is the package
// default.
//
// Internally n-grams are represented by 64-bit FNV-1a hashes of their
// runes, so graph construction performs no per-position string
// allocation and edge maps hash fixed-size keys; the gram strings are
// retained in a side table only for the public Edge-based API. The
// collision probability at document scale (tens of thousands of
// distinct 4-grams against a 64-bit space) is negligible.
package ngram

import (
	"math"
	"sort"
)

// Default parameters from the paper (after [13]).
const (
	DefaultN      = 4
	DefaultWindow = 4
)

// Edge is a directed pair of character n-grams.
type Edge struct {
	Src, Dst string
}

// gramID is the 64-bit hash of one n-gram's runes.
type gramID uint64

// packedEdge is the internal edge key.
type packedEdge struct {
	src, dst gramID
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashRunes computes the FNV-1a hash of a rune slice.
func hashRunes(rs []rune) gramID {
	var h uint64 = fnvOffset
	for _, r := range rs {
		h ^= uint64(uint32(r))
		h *= fnvPrime
	}
	return gramID(h)
}

// hashGram hashes the runes of a string (matching hashRunes on the
// equivalent slice).
func hashGram(s string) gramID {
	var h uint64 = fnvOffset
	for _, r := range s {
		h ^= uint64(uint32(r))
		h *= fnvPrime
	}
	return gramID(h)
}

// Graph is a weighted directed n-gram graph.
//
// Class graphs built by Merge store weights with a lazy global scale
// factor so that merging a document costs O(|doc|) instead of O(|G|):
// the true weight of edge e is w[e] * scale.
type Graph struct {
	w     map[packedEdge]float64
	grams map[gramID]string // id → gram text, for the Edge-based API
	// order lists the edges in first-insertion order. Float
	// accumulations over a graph's edges (ValueSimilarity) iterate this
	// slice instead of the map: Go randomizes map iteration order, and
	// summing in a different order changes the rounding of the result,
	// which would make the similarity features differ between runs in
	// their last bits. Insertion order is fully determined by the input
	// text, so iterating it keeps every graph computation bit-for-bit
	// reproducible.
	order  []packedEdge
	scale  float64
	merged int // number of document graphs folded into a class graph
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		w:     make(map[packedEdge]float64),
		grams: make(map[gramID]string),
		scale: 1,
	}
}

// FromText builds the n-gram graph of a text with rank n and
// neighborhood window win. Each n-gram is connected to the n-grams that
// start within the win characters preceding it; edge weights count
// co-occurrences, as in the JInsect implementation.
func FromText(text string, n, win int) *Graph {
	if n <= 0 {
		n = DefaultN
	}
	if win <= 0 {
		win = DefaultWindow
	}
	g := New()
	runes := []rune(text)
	if len(runes) < n {
		return g
	}
	count := len(runes) - n + 1
	ids := make([]gramID, count)
	for i := 0; i < count; i++ {
		id := hashRunes(runes[i : i+n])
		ids[i] = id
		if _, ok := g.grams[id]; !ok {
			g.grams[id] = string(runes[i : i+n])
		}
	}
	for i := 1; i < count; i++ {
		lo := i - win
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			e := packedEdge{ids[j], ids[i]}
			if _, ok := g.w[e]; !ok {
				g.order = append(g.order, e)
			}
			g.w[e]++
		}
	}
	return g
}

// FromDocument builds a graph with the paper's default parameters.
func FromDocument(text string) *Graph { return FromText(text, DefaultN, DefaultWindow) }

// Size reports the number of edges |G|.
func (g *Graph) Size() int { return len(g.w) }

func packEdge(e Edge) packedEdge {
	return packedEdge{hashGram(e.Src), hashGram(e.Dst)}
}

// Weight returns the weight of edge e (0 when absent).
func (g *Graph) Weight(e Edge) float64 { return g.w[packEdge(e)] * g.scale }

// Contains reports whether the edge is present (the paper's μ(e,G)).
func (g *Graph) Contains(e Edge) bool {
	_, ok := g.w[packEdge(e)]
	return ok
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		w:      make(map[packedEdge]float64, len(g.w)),
		grams:  make(map[gramID]string, len(g.grams)),
		order:  append([]packedEdge(nil), g.order...),
		scale:  g.scale,
		merged: g.merged,
	}
	for e, w := range g.w {
		c.w[e] = w
	}
	for id, s := range g.grams {
		c.grams[id] = s
	}
	return c
}

// Merge folds another document graph into g using the running-average
// update of the JInsect class-graph operator: after merging k documents
// the edge weights are the mean weights over those documents, with
// edges absent from a document decaying toward zero via the 1/(k+1)
// learning factor. The update w' = w·(1-l) + w_doc·l is applied lazily
// through the global scale, so a merge costs O(|doc|).
func (g *Graph) Merge(doc *Graph) {
	l := 1.0 / float64(g.merged+1)
	// Iterate the document's deterministic edge order (not its map) so
	// the class graph's own edge order is reproducible as well.
	if g.merged == 0 {
		// First merge: copy the document as-is.
		for _, e := range doc.order {
			g.w[e] = doc.w[e] * doc.scale
		}
		g.order = append(g.order, doc.order...)
		for id, s := range doc.grams {
			g.grams[id] = s
		}
		g.scale = 1
		g.merged = 1
		return
	}
	g.scale *= 1 - l
	inv := 1 / g.scale
	for _, e := range doc.order {
		if _, ok := g.w[e]; !ok {
			g.order = append(g.order, e)
		}
		g.w[e] += l * doc.w[e] * doc.scale * inv
	}
	for id, s := range doc.grams {
		if _, ok := g.grams[id]; !ok {
			g.grams[id] = s
		}
	}
	g.merged++
}

// MergeAll builds a class graph from a set of document graphs.
func MergeAll(docs []*Graph) *Graph {
	g := New()
	for _, d := range docs {
		g.Merge(d)
	}
	return g
}

// ContainmentSimilarity CS(Gi,Gj) = Σ_{e∈Gi} μ(e,Gj) / min(|Gi|,|Gj|).
func ContainmentSimilarity(gi, gj *Graph) float64 {
	if gi.Size() == 0 || gj.Size() == 0 {
		return 0
	}
	shared := 0
	small, large := gi, gj
	if small.Size() > large.Size() {
		small, large = large, small
	}
	for e := range small.w {
		if _, ok := large.w[e]; ok {
			shared++
		}
	}
	return float64(shared) / float64(min(gi.Size(), gj.Size()))
}

// SizeSimilarity SS(Gi,Gj) = min(|Gi|,|Gj|) / max(|Gi|,|Gj|).
func SizeSimilarity(gi, gj *Graph) float64 {
	if gi.Size() == 0 || gj.Size() == 0 {
		return 0
	}
	return float64(min(gi.Size(), gj.Size())) / float64(max(gi.Size(), gj.Size()))
}

// ValueSimilarity VS(Gi,Gj) = Σ_{e∈Gi} (min(w_e^i,w_e^j)/max(w_e^i,w_e^j)) / max(|Gi|,|Gj|).
func ValueSimilarity(gi, gj *Graph) float64 {
	if gi.Size() == 0 || gj.Size() == 0 {
		return 0
	}
	var sum float64
	// Sum in gi's deterministic edge order; iterating the map here
	// would randomize the accumulation order and thus the rounding.
	for _, e := range gi.order {
		wi := gi.w[e]
		wj, ok := gj.w[e]
		if !ok {
			continue
		}
		lo, hi := wi*gi.scale, wj*gj.scale
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 {
			sum += lo / hi
		}
	}
	return sum / float64(max(gi.Size(), gj.Size()))
}

// NormalizedValueSimilarity NVS = VS / SS.
func NormalizedValueSimilarity(gi, gj *Graph) float64 {
	ss := SizeSimilarity(gi, gj)
	if ss == 0 {
		return 0
	}
	return ValueSimilarity(gi, gj) / ss
}

// Similarity bundles the four measures of a document against one class
// graph.
type Similarity struct {
	CS, SS, VS, NVS float64
}

// Compare computes all four similarities of doc against class in a
// single traversal of doc's edges (see kernel.go). In particular NVS
// reuses the SS and VS already computed by the pass instead of
// recomputing both from scratch, as the standalone
// NormalizedValueSimilarity must. Results are bit-for-bit identical to
// the four standalone reference functions.
func Compare(doc, class *Graph) Similarity {
	return compareOne(doc, class)
}

// Features flattens similarities against the legitimate and
// illegitimate class graphs into the 8-feature vector used to train the
// N-Gram-Graph classifiers (Figure 2 of the paper).
func Features(doc, legitClass, illegitClass *Graph) []float64 {
	a, b := CompareBoth(doc, legitClass, illegitClass)
	return []float64{a.CS, a.SS, a.VS, a.NVS, b.CS, b.SS, b.VS, b.NVS}
}

// FeatureNames labels the Features slots, for diagnostics.
var FeatureNames = []string{
	"CS_legit", "SS_legit", "VS_legit", "NVS_legit",
	"CS_illegit", "SS_illegit", "VS_illegit", "NVS_illegit",
}

// TextRank implements the paper's Equation (3): the ranking score of a
// pharmacy from its N-Gram-Graph similarities, summing the similarities
// to the legitimate class and the complements of the similarities to
// the illegitimate class.
func TextRank(doc, legitClass, illegitClass *Graph) float64 {
	a, b := CompareBoth(doc, legitClass, illegitClass)
	return a.CS + (1 - b.CS) +
		a.SS + (1 - b.SS) +
		a.VS + (1 - b.VS) +
		a.NVS + (1 - b.NVS)
}

// Edges returns the edges sorted by decreasing weight (ties by lexical
// order), up to k entries — useful for inspecting what a class graph
// has learned.
func (g *Graph) Edges(k int) []Edge {
	type we struct {
		e Edge
		w float64
	}
	es := make([]we, 0, len(g.w))
	for pe, w := range g.w {
		es = append(es, we{Edge{g.grams[pe.src], g.grams[pe.dst]}, w})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].w != es[j].w {
			return es[i].w > es[j].w
		}
		if es[i].e.Src != es[j].e.Src {
			return es[i].e.Src < es[j].e.Src
		}
		return es[i].e.Dst < es[j].e.Dst
	})
	if k > 0 && k < len(es) {
		es = es[:k]
	}
	out := make([]Edge, len(es))
	for i := range es {
		out[i] = es[i].e
	}
	return out
}

// MaxWeight returns the largest edge weight (0 for an empty graph).
func (g *Graph) MaxWeight() float64 {
	var m float64
	for _, w := range g.w {
		m = math.Max(m, w)
	}
	return m * g.scale
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
