package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/webgen"
)

func TestBuildWithAux(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 20, NumLegit: 6, NumIllegit: 18, NetworkSize: 6})
	dirs := w.GenerateDirectories(2, 1)
	auxDomains := w.AttachDirectories(dirs)

	snap, err := BuildWithAux("aux", w, w.Domains(), w.Labels(), auxDomains, crawler.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Aux) != 3 {
		t.Fatalf("aux = %d, want 3", len(snap.Aux))
	}
	pharmDomains := map[string]bool{}
	for _, p := range snap.Pharmacies {
		pharmDomains[p.Domain] = true
	}
	linksToPharmacies := false
	for _, a := range snap.Aux {
		if a.Pages == 0 {
			t.Errorf("aux %s crawled no pages", a.Domain)
		}
		for _, ep := range a.Outbound {
			if pharmDomains[ep] {
				linksToPharmacies = true
			}
		}
	}
	if !linksToPharmacies {
		t.Error("no aux site links any pharmacy — inbound analysis would be vacuous")
	}

	ob := snap.AuxOutbound()
	if len(ob) != 3 {
		t.Errorf("AuxOutbound size = %d", len(ob))
	}
}

func TestAuxSurvivesSerialization(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 21, NumLegit: 4, NumIllegit: 8, NetworkSize: 4})
	auxDomains := w.AttachDirectories(w.GenerateDirectories(1, 1))
	snap, err := BuildWithAux("aux-io", w, w.Domains(), w.Labels(), auxDomains, crawler.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Aux, got.Aux) {
		t.Error("aux sites lost in round trip")
	}
}

func TestBuildWithoutAuxHasNone(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 22, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	snap, err := Build("plain", w, w.Domains(), w.Labels(), crawler.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Aux) != 0 {
		t.Errorf("unexpected aux sites: %d", len(snap.Aux))
	}
}
