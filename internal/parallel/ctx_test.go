package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCtxRunsAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [100]atomic.Bool
		err := ForCtx(context.Background(), len(ran), workers, func(i int) {
			ran[i].Store(true)
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestForCtxPrecanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		err := ForCtx(ctx, 50, workers, func(int) { calls.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := calls.Load(); n != 0 {
			t.Fatalf("workers=%d: %d indices ran on a pre-cancelled context", workers, n)
		}
	}
}

// TestForCtxCancelTruncates checks the truncation contract: after a
// mid-run cancel no further indices are dispatched, in-flight calls
// drain normally, and ctx's error is surfaced.
func TestForCtxCancelTruncates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 200
		var calls atomic.Int64
		err := ForCtx(ctx, n, workers, func(i int) {
			if calls.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The cancel fires inside call #5; beyond it only items already
		// in flight (or already past the done-check) may still run — a
		// couple per worker, never the whole range.
		if got := calls.Load(); got > int64(5+2*workers) {
			t.Fatalf("workers=%d: %d of %d indices ran despite cancellation (want <= %d)",
				workers, got, n, 5+2*workers)
		}
	}
}

func TestMapErrCtxResults(t *testing.T) {
	out, err := MapErrCtx(context.Background(), 10, 4, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapErrCtxErrorBeatsCancel pins the precedence rule: an error
// returned by f before the cancel wins over ctx.Err(), matching what a
// sequential loop would have reported.
func TestMapErrCtxErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapErrCtx(ctx, 50, 4, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the f error to beat context.Canceled", err)
	}
}

func TestMapErrCtxCancelDiscardsResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, err := MapErrCtx(ctx, 100, 4, func(i int) (int, error) {
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled MapErrCtx must discard its partial results")
	}
}

func TestMapErrCtxLowestErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	_, err := MapErrCtx(context.Background(), 20, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errB
		case 2:
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errA)
	}
}
