module pharmaverify

go 1.22
