package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml"
)

func sketchSnapshot() *dataset.Snapshot {
	return &dataset.Snapshot{
		Name: "sketch-test",
		Pharmacies: []dataset.Pharmacy{
			{Domain: "a.com", Label: ml.Legitimate,
				Terms:    []string{"pharmacy", "pharmacy", "licensed", "refill"},
				Outbound: []string{"fda.gov", "nabp.net"}},
			{Domain: "b.com", Label: ml.Illegitimate,
				Terms:    []string{"viagra", "cheap", "pharmacy"},
				Outbound: []string{"rxwinners.com", "fda.gov"}},
		},
	}
}

func TestBuildSketchFrequenciesAndDeterminism(t *testing.T) {
	snap := sketchSnapshot()
	s := BuildSketch(snap, 0, 0)
	if s.Domains != 2 {
		t.Fatalf("Domains = %d, want 2", s.Domains)
	}
	// 7 term observations, "pharmacy" appears 3 times.
	if got := s.Terms["pharmacy"]; math.Abs(got-3.0/7.0) > 1e-15 {
		t.Fatalf("Terms[pharmacy] = %v, want 3/7", got)
	}
	// 4 link observations, fda.gov appears twice.
	if got := s.Links["fda.gov"]; math.Abs(got-2.0/4.0) > 1e-15 {
		t.Fatalf("Links[fda.gov] = %v, want 1/2", got)
	}
	if m := s.KeptTermMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("KeptTermMass = %v, want 1 (everything kept)", m)
	}
	// Pure function of the snapshot: a second build is identical.
	if again := BuildSketch(snap, 0, 0); !reflect.DeepEqual(s, again) {
		t.Fatal("BuildSketch is not deterministic")
	}
}

func TestBuildSketchTopKDeterministicTieBreak(t *testing.T) {
	snap := &dataset.Snapshot{Pharmacies: []dataset.Pharmacy{
		{Domain: "a.com", Terms: []string{"zz", "aa", "mm", "top", "top"}},
	}}
	s := BuildSketch(snap, 2, 0)
	if len(s.Terms) != 2 {
		t.Fatalf("kept %d terms, want 2", len(s.Terms))
	}
	// "top" (count 2) first, then the lexicographically smallest of the
	// count-1 ties ("aa") — never "mm" or "zz".
	if _, ok := s.Terms["top"]; !ok {
		t.Fatal("most frequent term not kept")
	}
	if _, ok := s.Terms["aa"]; !ok {
		t.Fatalf("tie not broken lexicographically: kept %v", s.Terms)
	}
}

func TestBuildSketchEmptySnapshot(t *testing.T) {
	s := BuildSketch(&dataset.Snapshot{}, 0, 0)
	if len(s.Terms) != 0 || len(s.Links) != 0 || s.Domains != 0 {
		t.Fatalf("empty snapshot sketch not empty: %+v", s)
	}
	if s.KeptTermMass() != 0 || s.KeptLinkMass() != 0 {
		t.Fatal("empty sketch reports nonzero mass")
	}
}

// TestTrainingSketchPersists pins the drift baseline's lifecycle: Train
// computes it, Save/LoadVerifier round-trip it intact, and the
// fingerprint still matches across the round trip.
func TestTrainingSketchPersists(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: NBM, Terms: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sk := v.TrainingSketch()
	if sk == nil || len(sk.Terms) == 0 || len(sk.Links) == 0 {
		t.Fatalf("Train produced no usable sketch: %+v", sk)
	}
	if sk.Domains != snap.Len() {
		t.Fatalf("sketch.Domains = %d, want %d", sk.Domains, snap.Len())
	}

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVerifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.TrainingSketch(), sk) {
		t.Fatal("sketch did not survive the save/load round trip")
	}
	if loaded.Fingerprint() != v.Fingerprint() {
		t.Fatal("fingerprint changed across save/load with a sketch present")
	}
}
