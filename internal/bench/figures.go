package bench

import (
	"fmt"
	"strings"

	"pharmaverify/internal/core"
	"pharmaverify/internal/htmlx"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ngram"
	"pharmaverify/internal/trust"
)

// Figure1 reproduces the spirit of the paper's Figure 1: the front
// pages of one legitimate and one illegitimate pharmacy, which look
// deceptively similar to a casual reader.
func Figure1(e *Env) (*Table, error) {
	var legit, illegit string
	for _, d := range e.World1.Domains() {
		s := e.World1.Site(d)
		if s.Legitimate && legit == "" && !s.Isolated {
			legit = d
		}
		if !s.Legitimate && illegit == "" && !s.Evader && !s.Hub {
			illegit = d
		}
		if legit != "" && illegit != "" {
			break
		}
	}
	t := &Table{
		ID:     "Figure 1",
		Title:  "Front pages of two online pharmacies (can you tell which is legitimate?)",
		Header: []string{"pharmacy", "front-page excerpt"},
		Notes:  []string{fmt.Sprintf("answer: pharmacy 1 (%s) is illegitimate, pharmacy 2 (%s) is legitimate — as in the paper's Figure 1", illegit, legit)},
	}
	excerpt := func(domain string) string {
		html, err := e.World1.Fetch(domain, "/")
		if err != nil {
			return err.Error()
		}
		text := htmlx.Parse(html).Text
		if len(text) > 160 {
			text = text[:160] + "…"
		}
		return text
	}
	t.AddRow("pharmacy 1", excerpt(illegit))
	t.AddRow("pharmacy 2", excerpt(legit))
	return t, nil
}

// Figure2 traces the N-Gram-Graph classification process of the
// paper's Figure 2 for one document: text → graph → similarities to
// the class graphs → feature vector.
func Figure2(e *Env) (*Table, error) {
	snap := e.Snap1
	var legitDocs, illegitDocs []*ngram.Graph
	var probe *ngram.Graph
	var probeDomain string
	var probeLabel int
	for i, p := range snap.Pharmacies {
		text := strings.Join(p.Terms, " ")
		g := ngram.FromDocument(text)
		switch {
		case i == 0:
			probe, probeDomain, probeLabel = g, p.Domain, p.Label
		case p.Label == ml.Legitimate && len(legitDocs) < 20:
			legitDocs = append(legitDocs, g)
		case p.Label == ml.Illegitimate && len(illegitDocs) < 20:
			illegitDocs = append(illegitDocs, g)
		}
		if len(legitDocs) >= 20 && len(illegitDocs) >= 20 && probe != nil {
			break
		}
	}
	legitClass := ngram.MergeAll(legitDocs)
	illegitClass := ngram.MergeAll(illegitDocs)
	feats := ngram.Features(probe, legitClass, illegitClass)

	t := &Table{
		ID:     "Figure 2",
		Title:  "N-Gram-Graph classification process (one traced document)",
		Header: []string{"step", "value"},
	}
	t.AddRow("document", fmt.Sprintf("%s (true class: %s)", probeDomain, ml.ClassName(probeLabel)))
	t.AddRow("document graph edges", fmt.Sprintf("%d", probe.Size()))
	t.AddRow("legitimate class graph edges", fmt.Sprintf("%d (merged %d docs)", legitClass.Size(), len(legitDocs)))
	t.AddRow("illegitimate class graph edges", fmt.Sprintf("%d (merged %d docs)", illegitClass.Size(), len(illegitDocs)))
	for i, name := range ngram.FeatureNames {
		t.AddRow(name, f3(feats[i]))
	}
	t.AddRow("Eq.(3) textRank", f3(ngram.TextRank(probe, legitClass, illegitClass)))
	return t, nil
}

// Figure3 reproduces the TrustRank illustration: a small network of
// good and bad nodes before and after trust propagation.
func Figure3() (*Table, error) {
	// The good cluster (g1..g4) interlinks and g2 leaks one edge to the
	// bad cluster (b1..b3), mirroring the paper's Figure 3 topology.
	g := trust.NewGraph()
	edges := [][2]string{
		{"g1", "g2"}, {"g2", "g3"}, {"g3", "g4"}, {"g4", "g1"},
		{"g1", "g3"}, {"g2", "b1"},
		{"b1", "b2"}, {"b2", "b3"},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	seeds := map[string]float64{"g1": 1, "g2": 1}
	scores := trust.NewScores(g, trust.TrustRank(g, seeds, trust.Config{}))

	t := &Table{
		ID:     "Figure 3",
		Title:  "TrustRank propagation: initial seed vs converged trust",
		Header: []string{"node", "kind", "initial", "after TrustRank"},
		Notes:  []string{"good pages keep high trust; the bad cluster receives only the single leaked edge's share (approximate isolation)"},
	}
	for _, n := range []string{"g1", "g2", "g3", "g4", "b1", "b2", "b3"} {
		kind := "good"
		if strings.HasPrefix(n, "b") {
			kind = "bad"
		}
		init := "0"
		if _, ok := seeds[n]; ok {
			init = "1"
		}
		t.AddRow(n, kind, init, f3(scores.Of(n)))
	}
	return t, nil
}

// AblationA4 runs the §6.4 outlier analysis: illegitimate pharmacies
// that rank high and legitimate pharmacies that rank low.
func AblationA4(e *Env) (*Table, error) {
	res, err := core.RankCV(e.Snap1, core.RankConfig{
		Classifier: core.NBM, Terms: pickTerms(e, 1000), Seed: e.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	hi, lo := core.Outliers(res.Ranking, 5)

	t := &Table{
		ID:     "Analysis A4 (§6.4)",
		Title:  "Ranking outliers",
		Header: []string{"kind", "domain", "rank score", "network role"},
		Notes: []string{
			"paper: illegitimate outliers are not part of affiliate networks; legitimate outliers are the new-prescription sellers",
		},
	}
	role := func(domain string) string {
		s := e.World1.Site(domain)
		switch {
		case s == nil:
			return "?"
		case s.Evader:
			return "evader (no affiliate network)"
		case s.Hub:
			return "network hub"
		case s.Isolated:
			return "isolated (new-prescription seller)"
		case !s.Legitimate && s.HubDomain != "":
			return "networked affiliate"
		default:
			return "regular"
		}
	}
	for _, r := range hi {
		t.AddRow("illegitimate ranked high", r.Domain, f3(r.Score), role(r.Domain))
	}
	for _, r := range lo {
		t.AddRow("legitimate ranked low", r.Domain, f3(r.Score), role(r.Domain))
	}
	return t, nil
}
