// Package dataset defines the labeled pharmacy snapshots the
// experiments run on: for each pharmacy, the preprocessed terms of its
// summarized crawl and its outbound endpoint domains, plus the class
// label from the oracle (the paper's manually-labeled PharmaVerComp
// ground truth; here, the synthetic generator's labels).
//
// A Snapshot corresponds to one crawl epoch — the paper's Dataset 1 and
// Dataset 2, collected six months apart.
package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/textproc"
	"pharmaverify/internal/trust"
)

// Pharmacy is one labeled, crawled pharmacy website.
type Pharmacy struct {
	Domain string `json:"domain"`
	// Label is ml.Legitimate or ml.Illegitimate.
	Label int `json:"label"`
	// Terms is the stop-word-filtered token stream of the summary
	// document (all crawled pages merged).
	Terms []string `json:"terms"`
	// Outbound lists the distinct second-level endpoint domains the
	// site links to (Algorithm 1 input).
	Outbound []string `json:"outbound"`
	// Pages is the number of pages crawled.
	Pages int `json:"pages"`
}

// AuxSite is a crawled non-pharmacy website (e.g. a health portal or a
// review directory) whose outbound links point at pharmacies — the
// richer network input of the paper's future work (a). Auxiliary sites
// carry no class label and no text features; only their link structure
// participates in the network analysis.
type AuxSite struct {
	Domain   string   `json:"domain"`
	Outbound []string `json:"outbound"`
	Pages    int      `json:"pages"`
}

// Snapshot is a labeled crawl of many pharmacies at one point in time,
// optionally accompanied by auxiliary (non-pharmacy) link sources.
type Snapshot struct {
	Name       string     `json:"name"`
	Pharmacies []Pharmacy `json:"pharmacies"`
	Aux        []AuxSite  `json:"aux,omitempty"`
	// CrawlStats aggregates the crawl telemetry of the snapshot build
	// (pharmacies plus auxiliary sites): attempts, retries, failures,
	// breaker trips, bytes. Nil for snapshots saved by older versions
	// or assembled by hand.
	CrawlStats *crawler.Stats `json:"crawlStats,omitempty"`

	outboundOnce sync.Once
	outboundMap  map[string][]string

	hashOnce sync.Once
	hash     string
}

// Build crawls every domain through the fetcher, preprocesses the text
// (summarization + stop-word removal, no stemming) and extracts the
// outbound endpoints. labels must contain every domain.
func Build(name string, f crawler.Fetcher, domains []string, labels map[string]int, cfg crawler.Config, workers int) (*Snapshot, error) {
	return BuildCtx(context.Background(), name, f, domains, labels, BuildOptions{Crawl: cfg, Workers: workers})
}

// BuildWithAux is Build plus a set of auxiliary non-pharmacy domains
// whose outbound links are collected into Snapshot.Aux.
func BuildWithAux(name string, f crawler.Fetcher, domains []string, labels map[string]int, auxDomains []string, cfg crawler.Config, workers int) (*Snapshot, error) {
	return BuildCtx(context.Background(), name, f, domains, labels, BuildOptions{Crawl: cfg, Workers: workers, Aux: auxDomains})
}

// BuildOptions configures a snapshot build.
type BuildOptions struct {
	// Crawl bounds each per-domain crawl.
	Crawl crawler.Config
	// Workers bounds the number of simultaneous domain crawls (<= 0
	// uses the shared worker default: parallel.SetDefault /
	// PHARMAVERIFY_WORKERS, then GOMAXPROCS).
	Workers int
	// Aux lists auxiliary non-pharmacy domains to crawl into
	// Snapshot.Aux.
	Aux []string
	// Checkpoint, when non-nil, journals every completed domain crawl,
	// so a build that is killed or deadlined restarts from the last
	// finished domain: checkpointed domains are replayed from disk,
	// only unfinished ones are re-fetched, and (for a deterministic
	// fetcher) the resumed snapshot is byte-identical to an
	// uninterrupted one. Corrupt journal entries are quarantined and
	// recomputed.
	Checkpoint *checkpoint.Store
}

// Checkpoint namespaces for the two crawl phases of a build.
const (
	crawlCheckpointKind    = "crawl"
	crawlAuxCheckpointKind = "crawl-aux"
)

// BuildCtx is Build with cooperative cancellation, graceful degradation
// and optional checkpointed resume. When ctx is cancelled or its
// deadline expires mid-build, BuildCtx returns the partial snapshot
// assembled from the domains whose crawls completed — the shortfall is
// recorded in CrawlStats.DomainsMissing — together with ctx's error, so
// callers can choose between using the degraded snapshot and resuming
// the run. Interrupted domains are never included (and never
// checkpointed): a resumed build recomputes them from scratch.
func BuildCtx(ctx context.Context, name string, f crawler.Fetcher, domains []string, labels map[string]int, opts BuildOptions) (*Snapshot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, d := range domains {
		if _, ok := labels[d]; !ok {
			return nil, fmt.Errorf("dataset: no label for domain %q", d)
		}
	}
	results, crawlErr := crawlCheckpointed(ctx, f, domains, opts, crawlCheckpointKind)
	if crawlErr != nil && !isCancel(crawlErr) {
		return nil, crawlErr
	}
	pre := textproc.NewPreprocessor()

	snap := &Snapshot{Name: name}
	var stats crawler.Stats
	for _, d := range domains {
		r, ok := results[d]
		if !ok || r.Stats.Cancels != 0 {
			stats.DomainsMissing++
			continue
		}
		stats.Add(r.Stats)
		summary := textproc.Summarize(r.Text())
		snap.Pharmacies = append(snap.Pharmacies, Pharmacy{
			Domain:   d,
			Label:    labels[d],
			Terms:    pre.Terms(summary),
			Outbound: trust.OutboundEndpoints(r.External, d),
			Pages:    len(r.Pages),
		})
	}
	sort.Slice(snap.Pharmacies, func(i, j int) bool {
		return snap.Pharmacies[i].Domain < snap.Pharmacies[j].Domain
	})

	if len(opts.Aux) > 0 && crawlErr == nil {
		var auxResults map[string]crawler.Result
		auxResults, crawlErr = crawlCheckpointed(ctx, f, opts.Aux, opts, crawlAuxCheckpointKind)
		if crawlErr != nil && !isCancel(crawlErr) {
			return nil, crawlErr
		}
		for _, d := range opts.Aux {
			r, ok := auxResults[d]
			if !ok || r.Stats.Cancels != 0 {
				stats.DomainsMissing++
				continue
			}
			stats.Add(r.Stats)
			snap.Aux = append(snap.Aux, AuxSite{
				Domain:   d,
				Outbound: trust.OutboundEndpoints(r.External, d),
				Pages:    len(r.Pages),
			})
		}
		sort.Slice(snap.Aux, func(i, j int) bool { return snap.Aux[i].Domain < snap.Aux[j].Domain })
	} else if len(opts.Aux) > 0 {
		// The pharmacy phase was already interrupted: every auxiliary
		// domain is part of the shortfall.
		stats.DomainsMissing += len(opts.Aux)
	}
	snap.CrawlStats = &stats
	if crawlErr != nil {
		return snap, crawlErr
	}
	return snap, nil
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// crawlCheckpointed fans the domain crawls out through the shared
// parallel engine, replaying checkpointed domains from the journal and
// journaling freshly completed ones. Interrupted crawls (Stats.Cancels
// set) are never journaled.
func crawlCheckpointed(ctx context.Context, f crawler.Fetcher, domains []string, opts BuildOptions, kind string) (map[string]crawler.Result, error) {
	if opts.Checkpoint == nil {
		return crawler.CrawlAllCtx(ctx, f, domains, opts.Crawl, opts.Workers)
	}
	ckpt := opts.Checkpoint
	slots := make([]crawler.Result, len(domains))
	have := make([]bool, len(domains))
	putErrs := make([]error, len(domains))
	cancelErr := parallel.ForCtx(ctx, len(domains), opts.Workers, func(i int) {
		d := domains[i]
		var r crawler.Result
		if ok, err := ckpt.GetJSON(kind, d, &r); err == nil && ok && r.Domain == d && r.Stats.Cancels == 0 {
			slots[i], have[i] = r, true
			return
		}
		r = crawler.CrawlCtx(ctx, f, d, opts.Crawl)
		if r.Stats.Cancels == 0 && ctx.Err() == nil {
			putErrs[i] = ckpt.PutJSON(kind, d, r)
		}
		slots[i], have[i] = r, true
	})
	results := make(map[string]crawler.Result, len(domains))
	for i, r := range slots {
		if have[i] {
			results[r.Domain] = r
		}
	}
	for _, err := range putErrs {
		if err != nil {
			return results, err
		}
	}
	return results, cancelErr
}

// AuxOutbound returns auxiliary-domain → outbound endpoints.
func (s *Snapshot) AuxOutbound() map[string][]string {
	m := make(map[string][]string, len(s.Aux))
	for _, a := range s.Aux {
		m[a.Domain] = a.Outbound
	}
	return m
}

// Len reports the number of pharmacies.
func (s *Snapshot) Len() int { return len(s.Pharmacies) }

// Counts returns the number of legitimate and illegitimate pharmacies
// (the paper's Table 1 row).
func (s *Snapshot) Counts() (legit, illegit int) {
	for _, p := range s.Pharmacies {
		if p.Label == ml.Legitimate {
			legit++
		} else {
			illegit++
		}
	}
	return legit, illegit
}

// Labels returns the parallel label slice.
func (s *Snapshot) Labels() []int {
	y := make([]int, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		y[i] = p.Label
	}
	return y
}

// Domains returns the parallel domain slice.
func (s *Snapshot) Domains() []string {
	d := make([]string, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		d[i] = p.Domain
	}
	return d
}

// Outbound returns domain → outbound endpoints, the input of the
// network graph construction. The map is memoized and shared between
// callers: treat it as read-only (copy before merging anything into
// it), and do not mutate Pharmacies after the first call.
func (s *Snapshot) Outbound() map[string][]string {
	s.outboundOnce.Do(func() {
		m := make(map[string][]string, len(s.Pharmacies))
		for _, p := range s.Pharmacies {
			m[p.Domain] = p.Outbound
		}
		s.outboundMap = m
	})
	return s.outboundMap
}

// ContentHash returns a hex SHA-256 digest of the snapshot's contents
// (pharmacies, labels, terms, link structure and auxiliary sites) —
// everything the derived feature representations depend on. It is the
// cache key of the shared feature cache: unlike a pointer-formatted
// key, it can never alias two distinct snapshots, and logically
// identical snapshots (e.g. one reloaded from disk) share entries.
//
// The digest is memoized; like Outbound, it assumes the snapshot is
// not mutated after the first call.
func (s *Snapshot) ContentHash() string {
	s.hashOnce.Do(func() {
		h := sha256.New()
		var frame [8]byte
		num := func(n int) {
			binary.LittleEndian.PutUint64(frame[:], uint64(n))
			h.Write(frame[:])
		}
		// Length-prefix every string so concatenations can't collide
		// ("ab","c" vs "a","bc").
		str := func(v string) {
			num(len(v))
			io.WriteString(h, v)
		}
		num(len(s.Pharmacies))
		for _, p := range s.Pharmacies {
			str(p.Domain)
			num(p.Label)
			num(len(p.Terms))
			for _, t := range p.Terms {
				str(t)
			}
			num(len(p.Outbound))
			for _, o := range p.Outbound {
				str(o)
			}
			num(p.Pages)
		}
		num(len(s.Aux))
		for _, a := range s.Aux {
			str(a.Domain)
			num(len(a.Outbound))
			for _, o := range a.Outbound {
				str(o)
			}
			num(a.Pages)
		}
		s.hash = hex.EncodeToString(h.Sum(nil))
	})
	return s.hash
}

// SubsampledTerms returns each pharmacy's terms randomly subsampled to
// k terms (k=0 keeps everything), with a deterministic per-pharmacy
// stream derived from seed — the paper's 100/250/1000/2000-term
// experiment inputs.
func (s *Snapshot) SubsampledTerms(k int, seed int64) [][]string {
	out := make([][]string, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		rng := rand.New(rand.NewSource(seed + int64(i)*2654435761))
		out[i] = textproc.Subsample(p.Terms, k, rng)
	}
	return out
}

// IllegitDomainSet returns the set of illegitimate domains, used to
// check the paper's disjointness property between snapshots.
func (s *Snapshot) IllegitDomainSet() map[string]bool {
	m := make(map[string]bool)
	for _, p := range s.Pharmacies {
		if p.Label == ml.Illegitimate {
			m[p.Domain] = true
		}
	}
	return m
}

// Save serializes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load deserializes a snapshot saved with Save.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("dataset: decode snapshot: %w", err)
	}
	return &s, nil
}
