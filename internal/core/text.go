package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ngram"
	"pharmaverify/internal/vectorize"
)

// TextConfig parameterizes a text-classification experiment (§6.3.1).
type TextConfig struct {
	// Representation: TFIDF (default) or NGramGraphs.
	Representation Representation
	// Classifier is the learner abbreviation (default SVM).
	Classifier ClassifierKind
	// Sampling rebalances the training folds (default NoSampling).
	Sampling SamplingKind
	// Terms is the summary subsample size; 0 means "All".
	Terms int
	// Folds is the cross-validation fold count (default 3, the paper's
	// protocol).
	Folds int
	// Seed drives subsampling, fold assignment and learners.
	Seed int64
}

func (c TextConfig) withDefaults() TextConfig {
	if c.Representation == "" {
		c.Representation = TFIDF
	}
	if c.Classifier == "" {
		c.Classifier = SVM
	}
	if c.Sampling == "" {
		c.Sampling = NoSampling
	}
	if c.Folds == 0 {
		c.Folds = 3
	}
	return c
}

// TFIDFDataset vectorizes a snapshot with the Term Vector model:
// raw counts for the multinomial Naïve Bayes classifier, L2-normalized
// TF-IDF for everything else, over terms subsampled to cfg.Terms.
func TFIDFDataset(snap *dataset.Snapshot, cfg TextConfig) *ml.Dataset {
	cfg = cfg.withDefaults()
	docs := snap.SubsampledTerms(cfg.Terms, cfg.Seed)
	corpus := vectorize.NewCorpus(docs, snap.Labels(), snap.Domains())
	w := vectorize.WeightTFIDF
	if cfg.Classifier == NBM {
		w = vectorize.WeightCounts
	}
	return corpus.Dataset(w)
}

// TextCV runs the paper's 3-fold cross-validated text classification
// and returns the per-fold results.
func TextCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Representation {
	case TFIDF:
		return tfidfCV(snap, cfg)
	case NGramGraphs:
		return nggCV(snap, cfg)
	default:
		return eval.CVResult{}, fmt.Errorf("core: unknown representation %q", cfg.Representation)
	}
}

func tfidfCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	ds := TFIDFDataset(snap, cfg)
	smp, err := Sampler(cfg.Sampling)
	if err != nil {
		return eval.CVResult{}, err
	}
	trainer := func() ml.Classifier {
		clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
		if err != nil {
			panic(err) // kind validated below before first use
		}
		return clf
	}
	if _, err := NewClassifier(cfg.Classifier, cfg.Seed); err != nil {
		return eval.CVResult{}, err
	}
	return eval.CrossValidate(ds, cfg.Folds, cfg.Seed, trainer, smp)
}

// nggDocuments renders each pharmacy's (subsampled) terms back into a
// single string for n-gram graph construction.
func nggDocuments(snap *dataset.Snapshot, terms int, seed int64) []string {
	sub := snap.SubsampledTerms(terms, seed)
	docs := make([]string, len(sub))
	for i, ts := range sub {
		docs[i] = strings.Join(ts, " ")
	}
	return docs
}

// NGGFeatureDataset builds the 8-feature similarity dataset of Figure 2
// for the given document texts, using class graphs merged from the
// instances listed in classIdx (typically a random half of the training
// fold, following the paper's protocol).
func NGGFeatureDataset(docs []string, labels []int, names []string, classIdx []int) *ml.Dataset {
	legitClass, illegitClass := nggClassGraphs(docs, labels, classIdx)

	// Feature pass: document graphs are built, compared and discarded
	// one at a time per worker, so memory stays bounded by the two
	// class graphs plus one document graph per CPU regardless of corpus
	// size.
	ds := &ml.Dataset{Dim: 8}
	feats := make([][]float64, len(docs))
	parallelFor(len(docs), func(i int) {
		g := ngram.FromDocument(docs[i])
		feats[i] = ngram.Features(g, legitClass, illegitClass)
	})
	for i, f := range feats {
		name := ""
		if names != nil {
			name = names[i]
		}
		ds.Add(ml.NewVector(f), labels[i], name)
	}
	return ds
}

// nggClassGraphs builds the per-class merged graphs from the instances
// listed in classIdx, streaming one document graph at a time.
func nggClassGraphs(docs []string, labels []int, classIdx []int) (legit, illegit *ngram.Graph) {
	legit, illegit = ngram.New(), ngram.New()
	for _, i := range classIdx {
		g := ngram.FromDocument(docs[i])
		if labels[i] == ml.Legitimate {
			legit.Merge(g)
		} else {
			illegit.Merge(g)
		}
	}
	return legit, illegit
}

func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// nggFoldData caches the per-fold N-Gram-Graph feature datasets, which
// are identical for every classifier evaluated at the same (snapshot,
// terms, folds, seed) — the expensive graph construction then runs once
// per configuration rather than once per classifier.
type nggFoldData struct {
	folds eval.Folds
	ds    []*ml.Dataset
}

var (
	nggMemoMu sync.Mutex
	nggMemo   = map[string]*nggFoldData{}
)

func nggFoldFeatures(snap *dataset.Snapshot, terms, foldCount int, seed int64) *nggFoldData {
	key := fmt.Sprintf("%p|%d|%d|%d", snap, terms, foldCount, seed)
	nggMemoMu.Lock()
	if d, ok := nggMemo[key]; ok {
		nggMemoMu.Unlock()
		return d
	}
	nggMemoMu.Unlock()

	docs := nggDocuments(snap, terms, seed)
	labels := snap.Labels()
	names := snap.Domains()
	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	folds := eval.StratifiedKFold(labelDS, foldCount, seed)
	rng := rand.New(rand.NewSource(seed + 17))

	data := &nggFoldData{folds: folds}
	for f := range folds {
		trainIdx, _ := folds.TrainTest(f)
		// Random half of the training instances builds the class graphs.
		perm := rng.Perm(len(trainIdx))
		half := make([]int, 0, len(trainIdx)/2)
		for _, p := range perm[:len(trainIdx)/2] {
			half = append(half, trainIdx[p])
		}
		data.ds = append(data.ds, NGGFeatureDataset(docs, labels, names, half))
	}

	nggMemoMu.Lock()
	nggMemo[key] = data
	nggMemoMu.Unlock()
	return data
}

// nggCV cross-validates the N-Gram-Graph pipeline: per fold, the class
// graphs are merged from a random half of the training instances and
// every instance is represented by its 8 similarities to the two class
// graphs; the classifier is trained on the training-fold features.
// The paper does not use sampling with this representation.
func nggCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	if _, err := NewClassifier(cfg.Classifier, cfg.Seed); err != nil {
		return eval.CVResult{}, err
	}
	labels := snap.Labels()
	data := nggFoldFeatures(snap, cfg.Terms, cfg.Folds, cfg.Seed)
	folds := data.folds

	var res eval.CVResult
	for f := range folds {
		trainIdx, testIdx := folds.TrainTest(f)
		ds := data.ds[f]

		clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
		if err != nil {
			return eval.CVResult{}, err
		}
		if err := clf.Fit(ds.Subset(trainIdx)); err != nil {
			return eval.CVResult{}, err
		}
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			p := clf.Prob(ds.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		res.Folds = append(res.Folds, fr)
	}
	return res, nil
}
