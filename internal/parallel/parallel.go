// Package parallel is the deterministic fan-out engine used by the
// evaluation pipeline: a bounded, GOMAXPROCS-aware worker pool that
// executes index-addressed work items concurrently and collects the
// results in input order.
//
// Determinism contract: the engine never changes *what* is computed,
// only *when*. Callers must make each work item self-contained before
// dispatch — any shared random stream has to be pre-drawn in index
// order (see eval.CrossValidateOpts) — and then For/MapErr guarantee
// that the assembled results, including the error surfaced by MapErr,
// are identical to a sequential loop over the same items.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the GOMAXPROCS default when positive.
var defaultWorkers atomic.Int64

func init() {
	if s := os.Getenv("PHARMAVERIFY_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			defaultWorkers.Store(int64(n))
		}
	}
}

// SetDefault sets the process-wide default worker count used when a
// call site passes workers <= 0. n <= 0 restores the GOMAXPROCS
// default. The PHARMAVERIFY_WORKERS environment variable provides the
// same control without code changes.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default reports the current process-wide default worker count set by
// SetDefault or PHARMAVERIFY_WORKERS (0 when unset, i.e. GOMAXPROCS).
// Benchmark harnesses use it to save and restore the default around
// their sequential and parallel legs.
func Default() int { return int(defaultWorkers.Load()) }

// Workers resolves a requested worker count: a positive n is used as
// given; n <= 0 falls back to SetDefault / PHARMAVERIFY_WORKERS and
// finally to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if d := defaultWorkers.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs f(0) … f(n-1) on up to Workers(workers) goroutines and
// returns when all calls have finished. Items are handed out in index
// order; with workers resolving to 1 the loop runs inline with no
// goroutines. A panic in any f is re-raised in the caller (the one
// from the lowest index, matching a sequential loop).
func For(n, workers int, f func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							panicMu.Unlock()
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicVal)
	}
}

// ForGrain runs f over the index range [0, n) in contiguous chunks of
// at most grain indices: f(lo, hi) processes indices lo <= i < hi.
// Chunks are dispatched to up to Workers(workers) goroutines in chunk
// order, so fine-grained per-item work (a few microseconds per index)
// pays one goroutine handoff per chunk instead of one per item. The
// chunk layout depends only on n and grain — never on the worker count
// or scheduling — so callers can hold per-chunk scratch state without
// breaking the determinism contract.
//
// grain <= 0 picks an automatic grain: the range is split into roughly
// 8 chunks per worker (at least 1 index each), which keeps the tail of
// the run load-balanced while still amortizing handoffs. Note the
// automatic grain depends on the resolved worker count; callers that
// need a scheduling-independent chunk layout (e.g. per-chunk RNG
// streams) must pass an explicit grain. A panic in any f is re-raised
// in the caller (the one from the lowest chunk, matching a sequential
// loop).
func ForGrain(n, workers, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		w := Workers(workers)
		grain = n / (8 * w)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	For(chunks, workers, func(c int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

// MapErrGrain is MapErr with chunked dispatch: f is still called once
// per index and the results are ordered by index, but indices are
// handed to workers in contiguous chunks of at most grain (see
// ForGrain). If any call fails, the error of the lowest failing index
// is returned — the same error a sequential loop would surface first —
// and the results are discarded.
func MapErrGrain[T any](n, workers, grain int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForGrain(n, workers, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = f(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapErr runs f for every index on up to Workers(workers) goroutines
// and returns the results ordered by index. If any call fails, the
// error of the lowest failing index is returned — the same error a
// sequential loop would surface first — and the results are discarded.
func MapErr[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, workers, func(i int) {
		out[i], errs[i] = f(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
