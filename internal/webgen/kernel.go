package webgen

import (
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// This file is the pooled render kernel behind Generate: the same page
// bytes render.go produces with strings.Builder and fmt, built instead
// by direct appends into a reusable per-worker buffer. The formatting
// calls are replaced one-for-one (%q on a link is strconv.AppendQuote,
// which is fmt's own string quoting), every RNG draw happens in the
// same order and under the same short-circuit conditions, and
// paragraphs append into the page buffer instead of materializing
// intermediate strings — so the output is byte-identical to the serial
// reference (GenerateReference), which the package tests pin across
// seeds, drift knobs and worker counts.

// renderBuf is one worker's render scratch: the page byte buffer and
// the path list survive across the sites of a chunk, so a warm buffer
// allocates nothing per page beyond the final string.
type renderBuf struct {
	page  []byte
	paths []string
}

var renderBufPool = sync.Pool{New: func() any { return &renderBuf{page: make([]byte, 0, 4096)} }}

// renderSiteFast generates all pages of a site through the kernel.
func (w *World) renderSiteFast(s *Site, rb *renderBuf) {
	cfg := w.cfg
	rng := siteRNG(cfg.Seed, cfg.Snapshot, templateID(s), "site")
	m := w.textMixture(s)

	nPages := cfg.MinPages + rng.Intn(cfg.MaxPages-cfg.MinPages+1)
	paths := append(rb.paths[:0], "/", "/about", "/contact")
	for i := 0; len(paths) < nPages; i++ {
		if s.Legitimate && i%3 == 2 {
			paths = append(paths, "/health/"+strconv.Itoa(i))
		} else {
			paths = append(paths, "/products/"+strconv.Itoa(i))
		}
	}
	rb.paths = paths

	externals := w.externalLinks(s, rng)

	s.Pages = make(map[string]string, len(paths))
	s.Paths = append([]string(nil), paths...)
	for pi, path := range paths {
		s.Pages[path] = w.renderPageFast(s, rng, m, paths, pi, externals, rb)
	}
}

// renderPageFast is renderPage with pooled append-based construction.
func (w *World) renderPageFast(s *Site, rng *rand.Rand, m mixture, paths []string, pi int, externals []string, rb *renderBuf) string {
	cfg := w.cfg
	path := paths[pi]
	b := rb.page[:0]

	b = append(b, "<html><head><title>"...)
	b = appendPageTitle(b, s, path)
	b = append(b, "</title></head><body>\n<h1>"...)
	b = appendPageTitle(b, s, path)
	b = append(b, "</h1>\n"...)

	// Navigation: the front page links to every page; inner pages link
	// home and to the next page so breadth-first crawls reach everything.
	b = append(b, "<div class=\"nav\">\n"...)
	if path == "/" {
		for _, p := range paths[1:] {
			b = append(b, "<a href="...)
			b = strconv.AppendQuote(b, p)
			b = append(b, '>')
			b = append(b, strings.Trim(p, "/")...)
			b = append(b, "</a>\n"...)
		}
	} else {
		b = append(b, "<a href=\"/\">home</a>\n<a href="...)
		b = strconv.AppendQuote(b, paths[(pi+1)%len(paths)])
		b = append(b, ">next</a>\n"...)
	}
	b = append(b, "</div>\n"...)

	// Trust seals: legitimate pharmacies display verification seals,
	// one of the store-presence signals from the paper's related work.
	if s.Legitimate && (path == "/" || path == "/about") {
		b = append(b, "<div class=\"seal\">VIPPS accredited pharmacy — verified by NABP. Licensed pharmacist consultation available. Valid prescription required.</div>\n"...)
	}
	if !s.Legitimate && !s.Evader && (path == "/" || strings.HasPrefix(path, "/products")) {
		b = append(b, "<div class=\"banner\">Cheap generic viagra cialis — no prescription needed! Worldwide discreet overnight shipping. Bonus pills with every order.</div>\n"...)
	}

	// Body paragraphs.
	words := cfg.MinWords + rng.Intn(cfg.MaxWords-cfg.MinWords+1)
	nPar := 2 + rng.Intn(3)
	for i := 0; i < nPar; i++ {
		b = append(b, "<p>"...)
		b = appendParagraph(b, rng, m, words/nPar)
		b = append(b, "</p>\n"...)
	}

	// External links: spread across pages; the front page always gets
	// the first few so even shallow crawls observe them.
	b = append(b, "<div class=\"links\">\n"...)
	for i, l := range externals {
		onFront := i < 4
		if (path == "/" && onFront) || (!onFront && i%len(paths) == pi) || rng.Float64() < 0.15 {
			b = append(b, "<a href="...)
			b = strconv.AppendQuote(b, l)
			b = append(b, ">partner</a>\n"...)
		}
	}
	b = append(b, "</div>\n<div class=\"footer\">&copy; "...)
	b = append(b, s.Domain...)
	b = append(b, "</div>\n</body></html>\n"...)

	rb.page = b // keep the grown capacity for the next page
	return string(b)
}

// appendParagraph renders n words as sentence-like chunks, appending
// into the page buffer — the byte stream (and RNG draw sequence) of
// paragraph, without its intermediate string.
func appendParagraph(b []byte, rng *rand.Rand, m mixture, n int) []byte {
	for i := 0; i < n; i++ {
		if i > 0 {
			if i%11 == 10 {
				b = append(b, ". "...)
			} else {
				b = append(b, ' ')
			}
		}
		b = append(b, sampleWord(rng, m)...)
	}
	return append(b, '.')
}

// appendPageTitle appends pageTitle's bytes without building the
// intermediate string.
func appendPageTitle(b []byte, s *Site, path string) []byte {
	base := strings.SplitN(s.Domain, ".", 2)[0]
	switch {
	case path == "/":
		b = append(b, base...)
		if s.Legitimate {
			return append(b, " — your trusted licensed pharmacy"...)
		}
		return append(b, " — cheap meds online"...)
	case path == "/about":
		b = append(b, "About "...)
		return append(b, base...)
	case path == "/contact":
		b = append(b, "Contact "...)
		return append(b, base...)
	case strings.HasPrefix(path, "/health/"):
		b = append(b, base...)
		return append(b, " health information"...)
	default:
		b = append(b, base...)
		return append(b, " products"...)
	}
}
